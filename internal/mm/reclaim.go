package mm

import (
	"errors"
	"sort"

	"tmo/internal/backend"
	"tmo/internal/vclock"
)

// ReclaimResult reports the outcome of one reclaim run.
type ReclaimResult struct {
	// ReclaimedBytes is the DRAM actually released. For zswap targets the
	// compressed pool grows at the same time, so the *net* host saving is
	// smaller; callers read HostStat for net effects.
	ReclaimedBytes int64
	// ReclaimedAnon/ReclaimedFile break the released pages down by type.
	ReclaimedAnon, ReclaimedFile int64
	// ScannedPages counts LRU pages examined.
	ScannedPages int64
	// StallTime is the synchronous cost of the run: scan CPU plus
	// compression time for pages stored to zswap. For direct reclaim the
	// faulting task serves this as a memory stall; for proactive reclaim
	// it is the controller's own cost.
	StallTime vclock.Duration
	// SwapFull reports that the swap backend refused at least one store.
	SwapFull bool
	// DemotedPages counts anon victims moved to the far-memory node instead
	// of swap; their bytes are included in ReclaimedBytes (local DRAM was
	// freed) but not in ReclaimedAnon (they were not swapped out).
	DemotedPages int64
}

// add merges r2 into r.
func (r *ReclaimResult) add(r2 ReclaimResult) {
	r.ReclaimedBytes += r2.ReclaimedBytes
	r.ReclaimedAnon += r2.ReclaimedAnon
	r.ReclaimedFile += r2.ReclaimedFile
	r.ScannedPages += r2.ScannedPages
	r.StallTime += r2.StallTime
	r.SwapFull = r.SwapFull || r2.SwapFull
	r.DemotedPages += r2.DemotedPages
}

// scanBatch is how many pages move from the active to the inactive list per
// refill step, mirroring the kernel's SWAP_CLUSTER_MAX batching.
const scanBatch = 32

// maxScanFactor bounds scanning per shrink call relative to the reclaim
// target, so a wall of referenced pages cannot loop reclaim forever.
const maxScanFactor = 8

// reclaim frees up to want bytes from root's subtree. Groups are shrunk
// proportionally to their resident size, in up to three passes so that
// groups that came up short are compensated by the others.
func (m *Manager) reclaim(now vclock.Time, root *Group, want int64, direct bool) ReclaimResult {
	var total ReclaimResult
	remaining := want

	// Two phases: honour protections first; if the target was not met
	// from unprotected memory, memory.low degrades to best-effort and the
	// remainder comes from everywhere (kernel behaviour under sustained
	// pressure).
	for _, honourLow := range [2]bool{true, false} {
		for round := 0; round < 3 && remaining > 0; round++ {
			groups := m.subtreeGroups(root)
			var weightSum int64
			for _, g := range groups {
				weightSum += g.reclaimWeight(root, honourLow)
			}
			if weightSum == 0 {
				break
			}
			progressed := false
			for _, g := range groups {
				w := g.reclaimWeight(root, honourLow)
				if w == 0 {
					continue
				}
				share := remaining * w / weightSum
				if share < m.cfg.PageSize {
					share = m.cfg.PageSize
				}
				if honourLow && g != root && share > w {
					share = w
				}
				if share > remaining {
					share = remaining
				}
				if share <= 0 {
					continue
				}
				r := m.shrinkGroup(now, g, share)
				total.add(r)
				remaining -= r.ReclaimedBytes
				if r.ReclaimedBytes > 0 {
					progressed = true
				}
				if remaining <= 0 {
					break
				}
			}
			if !progressed {
				break
			}
		}
		if remaining <= 0 {
			break
		}
	}
	return total
}

// subtreeGroups returns root and all descendants in depth-first order. The
// result aliases the manager's scratch buffer: it is valid until the next
// call and must not be retained. Reclaim runs many times per simulated
// second, so enumerating the (small, stable) group tree must not allocate.
func (m *Manager) subtreeGroups(root *Group) []*Group {
	m.scratchGroups = appendSubtree(m.scratchGroups[:0], root)
	return m.scratchGroups
}

// appendSubtree appends g and its descendants to out depth-first.
func appendSubtree(out []*Group, g *Group) []*Group {
	out = append(out, g)
	for _, c := range g.children {
		out = appendSubtree(out, c)
	}
	return out
}

// shrinkOracle evicts the group's coldest pages by exact last-access time,
// the PolicyOracle comparator. It sees every page's true age — information a
// real kernel does not have — and so bounds what any scanning approximation
// could achieve.
func (m *Manager) shrinkOracle(now vclock.Time, g *Group, want int64) ReclaimResult {
	var res ReclaimResult
	target := (want + m.cfg.PageSize - 1) / m.cfg.PageSize

	// Collect resident pages, coldest first.
	var pages []*Page
	for t := PageType(0); t < numPageTypes; t++ {
		for _, lst := range []*lruList{&g.lists[t][0], &g.lists[t][1]} {
			for p := lst.head; p != nil; p = p.next {
				pages = append(pages, p)
			}
		}
	}
	sortPagesByAge(pages)
	res.ScannedPages = int64(len(pages))

	var reclaimed, writebacks int64
	for _, p := range pages {
		if reclaimed >= target {
			break
		}
		if p.Type == Anon && !m.anonScanAllowed() {
			continue
		}
		var lst *lruList
		if p.active {
			lst = &g.lists[p.Type][1]
		} else {
			lst = &g.lists[p.Type][0]
		}
		if p.Type == Anon {
			if m.cfg.Far != nil && m.cfg.Far.TryReserve(m.cfg.PageSize) {
				lst.remove(p)
				m.finishDemote(now, g, p, &res)
				reclaimed++
				continue
			}
			if !m.swapScanAllowed() {
				continue
			}
			// A one-page batch rather than Store so the refault bit rides
			// along (identical cost: every backend's single-page batch
			// degenerates to its Store path).
			oneReq := [1]backend.StoreReq{{
				PageBytes:     m.cfg.PageSize,
				CompressRatio: p.Compressibility,
				Refault:       p.refaulted,
			}}
			var oneRes [1]backend.StoreResult
			_, err := m.cfg.Swap.StoreBatch(now, oneReq[:], oneRes[:])
			if err != nil {
				m.swapExhausted = true
				res.SwapFull = true
				m.noteSwapReject(now, g)
				continue
			}
			store := oneRes[0]
			lst.remove(p)
			p.active = false
			p.state = Offloaded
			p.refaulted = false
			p.handle = uint64(store.Handle)
			g.residentPages[Anon]--
			g.charge(-m.cfg.PageSize)
			g.swappedPages++
			m.noteSwapOut(p)
			res.StallTime += store.Latency
			res.ReclaimedAnon++
		} else {
			lst.remove(p)
			if p.dirty {
				m.cfg.FS.WritePage(now)
				p.dirty = false
				writebacks++
			}
			p.active = false
			p.state = EvictedFile
			p.shadow = g.evictions
			p.hasShadow = true
			g.evictions++
			g.residentPages[File]--
			g.charge(-m.cfg.PageSize)
			res.ReclaimedFile++
		}
		reclaimed++
	}
	res.ReclaimedBytes = reclaimed * m.cfg.PageSize
	res.StallTime += vclock.Duration(res.ScannedPages) * m.cfg.ScanCPUPerPage / 8 // a table walk, not a list scan
	m.noteShrink(g, res, writebacks)
	return res
}

// sortPagesByAge orders pages coldest (oldest last touch) first; pages never
// touched are coldest of all.
func sortPagesByAge(pages []*Page) {
	sort.SliceStable(pages, func(i, j int) bool {
		pi, pj := pages[i], pages[j]
		if pi.touched != pj.touched {
			return !pi.touched
		}
		return pi.lastTouch < pj.lastTouch
	})
}

// shrinkGroup runs the per-group LRU scan loop, evicting up to want bytes
// from g's own lists.
func (m *Manager) shrinkGroup(now vclock.Time, g *Group, want int64) ReclaimResult {
	if m.cfg.Policy == PolicyOracle {
		return m.shrinkOracle(now, g, want)
	}
	var res ReclaimResult
	target := (want + m.cfg.PageSize - 1) / m.cfg.PageSize
	// The scan budget covers the reclaim target plus every second chance
	// outstanding: clearing referenced bits is bounded work, so reclaim
	// always makes forward progress even when the whole LRU was recently
	// referenced (the kernel achieves the same through priority
	// escalation).
	refs := int64(0)
	for t := PageType(0); t < numPageTypes; t++ {
		refs += int64(g.lists[t][0].refs + g.lists[t][1].refs)
	}
	scanLimit := target*maxScanFactor + refs + scanBatch
	var reclaimed, writebacks int64

	for reclaimed+int64(m.nStoreVictims) < target && res.ScannedPages < scanLimit {
		t, ok := m.pickScanType(now, g)
		if !ok {
			break
		}
		inactive := &g.lists[t][0]
		active := &g.lists[t][1]

		// Refill the inactive list from the active tail when it runs
		// low, clearing referenced bits as the kernel's deactivation
		// does.
		if g.inactiveLow(t) {
			for i := 0; i < scanBatch && active.tail != nil; i++ {
				p := active.tail
				active.remove(p)
				p.active = false
				p.referenced = false
				inactive.pushHead(p)
			}
		}
		p := inactive.tail
		if p == nil {
			// Nothing inactive and nothing to refill: this type is
			// empty; try the other or give up via pickScanType's
			// availability checks next iteration.
			if active.count == 0 {
				if other, ok := m.otherAvailable(g, t); ok {
					t = other
					continue
				}
				break
			}
			continue
		}
		res.ScannedPages++

		if p.referenced {
			// Second chance, kernel-style: a referenced anonymous page
			// is activated; a once-referenced file page is rotated back
			// to the inactive head (the use-once heuristic) and only
			// activation through a second access protects it further.
			inactive.remove(p)
			p.referenced = false
			if t == Anon {
				p.active = true
				g.lists[t][1].pushHead(p)
			} else {
				inactive.pushHead(p)
			}
			continue
		}

		if t == Anon {
			inactive.remove(p)
			// Demotion before swap: a cold anon victim moves to the
			// byte-addressable far node while it has room, so it stays
			// mapped at link latency instead of faulting; the swap tiers
			// engage only once the node is full (the third rung).
			if m.cfg.Far != nil && m.cfg.Far.TryReserve(m.cfg.PageSize) {
				m.finishDemote(now, g, p, &res)
				reclaimed++
				continue
			}
			if !m.swapScanAllowed() {
				// Far node full and no swap rung available: give the page
				// back; pickScanType stops selecting anon now that neither
				// rung has room.
				inactive.pushHead(p)
				continue
			}
			// Gather the victim; victims flush as one batched store per
			// swap cluster, so the device sees clustered submissions and
			// the queue/backpressure cost is paid once per batch.
			m.storeVictims[m.nStoreVictims] = p
			m.storeReqs[m.nStoreVictims] = backend.StoreReq{
				PageBytes:     m.cfg.PageSize,
				CompressRatio: p.Compressibility,
				Refault:       p.refaulted,
			}
			m.nStoreVictims++
			if m.nStoreVictims == swapClusterSize {
				reclaimed += m.flushSwapOuts(now, g, &res)
			}
			continue
		} else {
			inactive.remove(p)
			// A dirty page must be written back before it can be
			// dropped; writeback consumes device endurance and IOPS but
			// completes asynchronously (flusher threads), so no stall is
			// charged here.
			if p.dirty {
				m.cfg.FS.WritePage(now)
				p.dirty = false
				writebacks++
			}
			p.state = EvictedFile
			p.shadow = g.evictions
			p.hasShadow = true
			g.evictions++
			g.residentPages[File]--
			g.charge(-m.cfg.PageSize)
			res.ReclaimedFile++
		}
		reclaimed++
	}
	reclaimed += m.flushSwapOuts(now, g, &res)
	res.ReclaimedBytes = reclaimed * m.cfg.PageSize
	res.StallTime += vclock.Duration(res.ScannedPages) * m.cfg.ScanCPUPerPage
	m.noteShrink(g, res, writebacks)
	return res
}

// flushSwapOuts submits the gathered anon victims as one batched store and
// applies the Offloaded transition to the stored prefix, returning how many
// pages were reclaimed. Any backpressure stall from the writeback queue
// arrives in the batch's first StoreResult and lands on the run's StallTime,
// so a full queue throttles reclaim and feeds PSI. Pages the backend had no
// room for return to the inactive head and the swap-exhausted latch trips,
// stopping further anon scanning until space frees.
func (m *Manager) flushSwapOuts(now vclock.Time, g *Group, res *ReclaimResult) int64 {
	n := m.nStoreVictims
	if n == 0 {
		return 0
	}
	m.nStoreVictims = 0
	stored, err := m.cfg.Swap.StoreBatch(now, m.storeReqs[:n], m.storeRes[:n])
	for i := 0; i < stored; i++ {
		p := m.storeVictims[i]
		r := m.storeRes[i]
		p.state = Offloaded
		p.refaulted = false
		p.handle = uint64(r.Handle)
		p.group.residentPages[Anon]--
		p.group.charge(-m.cfg.PageSize)
		p.group.swappedPages++
		m.noteSwapOut(p)
		res.StallTime += r.Latency
		res.ReclaimedAnon++
	}
	if err != nil {
		if !errors.Is(err, backend.ErrFull) {
			panic("mm: unexpected swap store error: " + err.Error())
		}
		for i := stored; i < n; i++ {
			p := m.storeVictims[i]
			p.group.lists[Anon][0].pushHead(p)
		}
		m.swapExhausted = true
		res.SwapFull = true
		m.noteSwapReject(now, g)
	}
	return int64(stored)
}

// noteShrink folds one shrink run's per-page event counts into the group's
// cumulative counters and the telemetry registry. Batching here means the
// instrumented reclaim path pays one counter update per shrink call instead
// of one atomic per page scanned or evicted.
func (m *Manager) noteShrink(g *Group, res ReclaimResult, writebacks int64) {
	g.stat.PagesScanned += res.ScannedPages
	g.stat.SwapOuts += res.ReclaimedAnon
	g.stat.FileEvictions += res.ReclaimedFile
	g.stat.FileWritebacks += writebacks
	g.stat.Demotions += res.DemotedPages
	if m.tel == nil {
		return
	}
	if res.ScannedPages > 0 {
		m.tel.pagesScanned.Add(res.ScannedPages)
	}
	if res.ReclaimedAnon > 0 {
		m.tel.swapOuts.Add(res.ReclaimedAnon)
	}
	if res.ReclaimedFile > 0 {
		m.tel.fileEvictions.Add(res.ReclaimedFile)
	}
	if writebacks > 0 {
		m.tel.fileWritebacks.Add(writebacks)
	}
}

// otherAvailable reports whether the LRU of the type other than t has pages
// and is allowed to be scanned.
func (m *Manager) otherAvailable(g *Group, t PageType) (PageType, bool) {
	other := File
	if t == File {
		other = Anon
	}
	if other == Anon && !m.anonScanAllowed() {
		return other, false
	}
	return other, g.lists[other][0].count+g.lists[other][1].count > 0
}

// anonScanAllowed reports whether anonymous reclaim is possible at all:
// either the far node has room for a demotion, or a swap rung can store.
func (m *Manager) anonScanAllowed() bool {
	if m.cfg.Far != nil && m.cfg.Far.FreeBytes() >= m.cfg.PageSize {
		return true
	}
	return m.swapScanAllowed()
}

// swapScanAllowed reports whether the swap rung specifically can take
// stores.
func (m *Manager) swapScanAllowed() bool {
	return m.cfg.Swap != nil && !m.swapExhausted
}

// legacyFileFloorDiv sets the legacy policy's emergency threshold: swap is
// considered only once file cache is below 1/8th of the group's resident
// memory, reproducing the kernel's historical skew toward file reclaim.
const legacyFileFloorDiv = 8

// pickScanType decides which LRU to scan next, implementing the policy
// split at the heart of §3.4.
func (m *Manager) pickScanType(now vclock.Time, g *Group) (PageType, bool) {
	fileAvail := g.lists[File][0].count+g.lists[File][1].count > 0
	anonAvail := m.anonScanAllowed() && g.lists[Anon][0].count+g.lists[Anon][1].count > 0
	if !fileAvail && !anonAvail {
		return File, false
	}
	if !anonAvail {
		return File, true
	}
	if !fileAvail {
		return Anon, true
	}

	switch m.cfg.Policy {
	case PolicyLegacy:
		// Historical behaviour: reclaim file cache until it is nearly
		// exhausted; swap is an emergency overflow.
		total := g.residentPages[Anon] + g.residentPages[File]
		if g.residentPages[File] > total/legacyFileFloorDiv {
			return File, true
		}
		return Anon, true

	default: // PolicyTMO
		anonCost, fileCost := g.Costs(now)
		// No recent refaults: the file working set is not being hurt,
		// keep reclaiming only file cache.
		if fileCost < 0.5 {
			return File, true
		}
		// Balance scan pressure by relative paging cost: the more the
		// file cache refaults, the more anonymous memory is scanned,
		// and vice versa.
		weightAnon := fileCost / (anonCost + fileCost)
		g.scanAcc += weightAnon
		if g.scanAcc >= 1 {
			g.scanAcc--
			return Anon, true
		}
		return File, true
	}
}
