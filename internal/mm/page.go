// Package mm implements the simulated kernel memory-management substrate:
// pages, per-cgroup active/inactive LRU lists, shadow-entry refault
// detection, and the reclaim algorithm in both its historical (file-skewed)
// and TMO (cost-balanced) forms (§3.4 of the paper).
//
// The package deliberately mirrors the Linux structures the paper modifies:
//
//   - Each memory control group keeps two LRU pairs — active/inactive for
//     anonymous memory and for file cache — with second-chance scanning
//     driven by per-page referenced bits.
//   - When a file page is evicted, a shadow entry records the group's
//     eviction counter; a later fault computes the reuse distance and
//     classifies the fault as a refault of working-set memory if the
//     distance is smaller than the group's resident set.
//   - TMO-mode reclaim takes file cache exclusively while refaults are
//     absent, then balances file and anonymous scanning by the relative
//     paging cost observed (refault rate vs swap-in rate), so swap engages
//     exactly when the file working set starts getting hurt.
//
// Faults return the stall the faulting task must serve; the simulation layer
// converts those into PSI stall intervals.
package mm

import "tmo/internal/vclock"

// PageType distinguishes the two memory categories of §2.4.
type PageType int

// The two page types.
const (
	Anon PageType = iota
	File
	numPageTypes
)

// String names the page type.
func (t PageType) String() string {
	if t == Anon {
		return "anon"
	}
	return "file"
}

// PageState describes where a page's content currently lives.
type PageState int

// Page lifecycle states.
const (
	// NotPresent: the page has been created but never populated (a file
	// page not yet read, or anon not yet faulted in). First touch
	// populates it.
	NotPresent PageState = iota
	// Resident: in DRAM, on one of the group's LRU lists.
	Resident
	// Offloaded: an anonymous page stored in the swap backend.
	Offloaded
	// EvictedFile: a file page dropped from cache; a shadow entry may
	// remember its eviction for refault detection. Reload goes to the
	// filesystem.
	EvictedFile
)

// String names the page state.
func (s PageState) String() string {
	switch s {
	case NotPresent:
		return "not-present"
	case Resident:
		return "resident"
	case Offloaded:
		return "offloaded"
	case EvictedFile:
		return "evicted-file"
	}
	return "invalid"
}

// Page is one simulated page frame identity. For file pages the Page stands
// for a (file, offset) position and persists across evictions; for anonymous
// pages it stands for a virtual page of some process.
type Page struct {
	// Type is fixed at creation.
	Type PageType
	// Compressibility is the page content's intrinsic compression ratio
	// (uncompressed/compressed) used when the page is offloaded to zswap.
	Compressibility float64

	group *Group
	state PageState

	// LRU bookkeeping.
	active     bool
	referenced bool
	next, prev *Page
	list       *lruList

	// dirty marks a file page whose content has been modified since it
	// was last written back; evicting it costs a device write.
	dirty bool

	// handle locates the page in the swap backend while Offloaded.
	handle uint64
	// cluster groups pages swapped out together; swap readahead loads
	// cluster neighbours alongside a faulting page, like the kernel's
	// swap readahead over adjacent swap slots. Membership is intrusive:
	// non-nil only while the page is Offloaded and indexed for readahead.
	cluster                  *swapCluster
	clusterNext, clusterPrev *Page

	// refaulted marks an anon page that demand-faulted back from the swap
	// backend since its last offload. The next offload carries it as
	// StoreReq.Refault so a multi-tier chain can promote the page toward a
	// faster tier; it clears when the offload lands. Readahead neighbours
	// that were never touched do not set it.
	refaulted bool

	// pendingUntil, when in the future, is the completion time of the
	// batched load that is bringing this page in: readahead inserts cluster
	// neighbours as Resident the moment the batch is submitted, and a touch
	// before the batch lands is a coalesced fault that waits out the
	// remainder instead of issuing a duplicate load. pendingIO records
	// whether that batch performed block IO, for pressure classification.
	pendingUntil vclock.Time
	pendingIO    bool

	// far marks a Resident anonymous page whose frame lives on the
	// byte-addressable far-memory node rather than local DRAM: it is on the
	// group's far list, costs no local capacity, and every touch pays the
	// link latency in place of a fault.
	far bool
	// farHits counts touches since the placement loop's last access-bit
	// scan over this page, saturating; the loop promotes pages whose count
	// crosses its threshold.
	farHits uint8
	// migrating marks a far page with a non-exclusive promotion copy in
	// flight (Nomad-style): the page stays mapped far and fully accessible,
	// so an aborted promotion costs nothing.
	migrating bool

	// shadow is the group eviction counter recorded when this file page
	// was evicted; valid while hasShadow is set.
	shadow    uint64
	hasShadow bool

	// lastTouch supports idle-page tracking (the Fig. 2 coldness
	// characterisation) and is updated on every access.
	lastTouch vclock.Time
	touched   bool // whether the page was ever accessed
}

// State returns where the page currently lives.
func (p *Page) State() PageState { return p.state }

// Group returns the memory control group that owns the page.
func (p *Page) Group() *Group { return p.group }

// Active reports whether the page is on the active LRU list.
func (p *Page) Active() bool { return p.active }

// Referenced reports the page's referenced bit.
func (p *Page) Referenced() bool { return p.referenced }

// Dirty reports whether the page awaits writeback.
func (p *Page) Dirty() bool { return p.dirty }

// Far reports whether the page's frame lives on the far-memory node.
func (p *Page) Far() bool { return p.far }

// Migrating reports whether a non-exclusive promotion copy is in flight.
func (p *Page) Migrating() bool { return p.migrating }

// LastTouch returns the time of the page's most recent access and whether
// it was ever accessed.
func (p *Page) LastTouch() (vclock.Time, bool) { return p.lastTouch, p.touched }

// swapCluster indexes the still-offloaded pages of one swap cluster as an
// intrusive doubly-linked list threaded through the pages themselves
// (clusterNext/clusterPrev), so joining and leaving a cluster are O(1)
// pointer updates with no map or slice bookkeeping on the fault path. The
// list is kept in swap-out order: head is the first page stored into the
// cluster, matching the adjacent-slot order the kernel's readahead walks.
type swapCluster struct {
	head, tail *Page
	// n counts live members; when it reaches zero the manager recycles
	// the cluster through its free list.
	n int
}

// pushTail appends p to the cluster in swap-out order.
func (c *swapCluster) pushTail(p *Page) {
	p.cluster = c
	p.clusterNext = nil
	p.clusterPrev = c.tail
	if c.tail != nil {
		c.tail.clusterNext = p
	} else {
		c.head = p
	}
	c.tail = p
	c.n++
}

// remove unlinks p from the cluster.
func (c *swapCluster) remove(p *Page) {
	if p.clusterPrev != nil {
		p.clusterPrev.clusterNext = p.clusterNext
	} else {
		c.head = p.clusterNext
	}
	if p.clusterNext != nil {
		p.clusterNext.clusterPrev = p.clusterPrev
	} else {
		c.tail = p.clusterPrev
	}
	p.cluster, p.clusterNext, p.clusterPrev = nil, nil, nil
	c.n--
}

// lruList is an intrusive doubly-linked page list. The head is the most
// recently added end; reclaim scans from the tail. The list tracks how many
// of its pages carry the referenced bit so reclaim can size its scan budget
// to the work actually needed to clear second chances.
type lruList struct {
	head, tail *Page
	count      int
	refs       int
}

// pushHead inserts p at the head (MRU position).
func (l *lruList) pushHead(p *Page) {
	if p.list != nil {
		panic("mm: page already on a list")
	}
	p.list = l
	p.prev = nil
	p.next = l.head
	if l.head != nil {
		l.head.prev = p
	}
	l.head = p
	if l.tail == nil {
		l.tail = p
	}
	l.count++
	if p.referenced {
		l.refs++
	}
}

// remove unlinks p from the list.
func (l *lruList) remove(p *Page) {
	if p.list != l {
		panic("mm: removing page from wrong list")
	}
	if p.prev != nil {
		p.prev.next = p.next
	} else {
		l.head = p.next
	}
	if p.next != nil {
		p.next.prev = p.prev
	} else {
		l.tail = p.prev
	}
	p.next, p.prev, p.list = nil, nil, nil
	l.count--
	if p.referenced {
		l.refs--
	}
}

// rotate moves p to the head, giving it another pass through the list.
func (l *lruList) rotate(p *Page) {
	l.remove(p)
	l.pushHead(p)
}
