package mm

import (
	"testing"

	"tmo/internal/vclock"
)

// These tests pin the allocation behaviour of the fault hot paths so a
// regression fails `go test`, not just a benchmark diff someone has to
// read. The simulation executes Touch millions of times per experiment;
// a single allocation per call dominates the heap profile.

// TestTouchResidentHitAllocFree pins the resident-hit path at zero
// allocations: touching a page that is already resident must only flip
// referenced bits and LRU positions.
func TestTouchResidentHitAllocFree(t *testing.T) {
	m := newTestManager(1024, nil, PolicyTMO)
	g := m.NewGroup("app", nil)
	pages := m.NewPages(g, Anon, 64, 1)
	touchAll(m, 0, pages)
	now := vclock.Time(vclock.Second)
	i := 0
	avg := testing.AllocsPerRun(1000, func() {
		m.Touch(now, pages[i%len(pages)])
		i++
	})
	if avg != 0 {
		t.Fatalf("resident-hit Touch allocates %.2f times per call, want 0", avg)
	}
}

// TestFaultPathAllocFree pins the zero-fill fault path, including the
// FreePages return trip, at zero allocations.
func TestFaultPathAllocFree(t *testing.T) {
	m := newTestManager(1024, nil, PolicyTMO)
	g := m.NewGroup("app", nil)
	pages := m.NewPages(g, Anon, 1, 1)
	now := vclock.Time(vclock.Second)
	free := pages[:1]
	avg := testing.AllocsPerRun(1000, func() {
		m.Touch(now, pages[0])
		m.FreePages(free)
	})
	if avg != 0 {
		t.Fatalf("zero-fill fault cycle allocates %.2f times per call, want 0", avg)
	}
}

// TestSwapInFaultAllocBound bounds the swap-in fault + re-offload cycle
// below one allocation per round trip. The mm layer itself is
// allocation-free here (cluster bookkeeping is intrusive, reclaim reuses
// its scratch buffer); the fractional remainder is the zswap backend
// amortising pool bookkeeping growth.
func TestSwapInFaultAllocBound(t *testing.T) {
	m := newTestManager(1024, newZswap(), PolicyTMO)
	g := m.NewGroup("app", nil)
	pages := m.NewPages(g, Anon, 64, 2)
	touchAll(m, 0, pages)
	now := vclock.Time(vclock.Second)
	i := 0
	avg := testing.AllocsPerRun(200, func() {
		now = now.Add(vclock.Millisecond)
		// Offload one page, then fault: one store plus one load per round.
		m.SetLimit(now, g, g.HierResidentBytes()-pageSize)
		m.SetLimit(now, g, 0)
		m.Touch(now, pages[i%len(pages)])
		i++
	})
	if avg >= 1 {
		t.Fatalf("swap-in fault cycle allocates %.2f times per round trip, want < 1", avg)
	}
}
