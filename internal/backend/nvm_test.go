package backend

import (
	"testing"

	"tmo/internal/vclock"
)

func TestNVMStoreLoadFree(t *testing.T) {
	n := NewNVM(SpecNVMOptane, 71)
	if n.Kind() != KindZswap {
		t.Fatalf("NVM loads must have the memory-only pressure signature")
	}
	res, err := n.Store(0, pageSize, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if res.StoredBytes != pageSize || res.DeviceWrite != 0 || res.Latency != 0 {
		t.Fatalf("store result = %+v", res)
	}
	if n.PoolBytes() != 0 {
		t.Fatalf("NVM must cost no host DRAM")
	}
	lr := n.Load(0, res.Handle)
	if lr.BlockIO {
		t.Fatalf("NVM load reported block IO")
	}
	if lr.Latency <= 0 || lr.Latency > 100*vclock.Microsecond {
		t.Fatalf("NVM load latency = %v, want a few us", lr.Latency)
	}
	if n.Stats().StoredPages != 0 {
		t.Fatalf("stats after load: %+v", n.Stats())
	}
	res2, _ := n.Store(0, pageSize, 1)
	n.Free(res2.Handle)
	n.Free(res2.Handle) // no-op
	if n.Stats().StoredPages != 0 {
		t.Fatalf("free leaked")
	}
	if n.WriteRate(0) != 0 {
		t.Fatalf("NVM write rate must be 0 (no endurance regulation)")
	}
}

func TestNVMCapacity(t *testing.T) {
	spec := SpecCXLDRAM
	spec.CapacityBytes = 2 * pageSize
	n := NewNVM(spec, 72)
	n.Store(0, pageSize, 1)
	n.Store(0, pageSize, 1)
	if _, err := n.Store(0, pageSize, 1); err != ErrFull {
		t.Fatalf("over-capacity store err = %v", err)
	}
}

func TestNVMLoadUnknownPanics(t *testing.T) {
	n := NewNVM(SpecNVMOptane, 73)
	defer func() {
		if recover() == nil {
			t.Fatalf("no panic")
		}
	}()
	n.Load(0, 5)
}

func TestNVMFasterThanSSDSlowerThanZswap(t *testing.T) {
	// The latency ordering that makes the spectrum experiment meaningful:
	// zswap < CXL < NVM < any SSD (median).
	ssd := DeviceCatalog[6] // fastest SSD generation
	if !(SpecCXLDRAM.ReadMedian < SpecNVMOptane.ReadMedian &&
		SpecNVMOptane.ReadMedian < ssd.ReadMedian) {
		t.Fatalf("tier latency ordering broken")
	}
	if CodecZstd.DecompressMedian >= ssd.ReadMedian {
		t.Fatalf("zswap not faster than SSD")
	}
}

func TestSSDDegradation(t *testing.T) {
	spec, _ := DeviceByModel("C")
	dev := NewSSDDevice(spec, 74)
	base := NewSSDDevice(spec, 74) // same stream
	dev.SetDegradation(8)
	var degraded, nominal float64
	now := vclock.Time(0)
	for i := 0; i < 500; i++ {
		degraded += float64(dev.Read(now))
		nominal += float64(base.Read(now))
		now = now.Add(10 * vclock.Millisecond)
	}
	if degraded < 6*nominal {
		t.Fatalf("degradation x8 produced only %.1fx slowdown", degraded/nominal)
	}
	dev.SetDegradation(0) // clamps to 1: back to nominal
	a := float64(dev.Read(now))
	_ = a
	dev.SetDegradation(1)
}
