package backend

import (
	"fmt"
	"math/rand/v2"

	"tmo/internal/dist"
	"tmo/internal/telemetry"
	"tmo/internal/vclock"
)

// Codec models a zswap compression algorithm. The paper's production
// deployment evaluated lzo, lz4, and zstd and selected zstd for its
// compression ratio at acceptable overhead (§5.1).
type Codec struct {
	// Name of the algorithm.
	Name string
	// RatioFactor scales a page's intrinsic compressibility: zstd achieves
	// the full ratio (1.0); the faster byte-oriented codecs achieve less.
	RatioFactor float64
	// Compression cost paid synchronously on the reclaim path.
	CompressMedian, CompressP99 vclock.Duration
	// Decompression cost paid synchronously by the faulting task.
	DecompressMedian, DecompressP99 vclock.Duration
}

// The codecs evaluated in §5.1. Decompression latencies put the zswap p90
// load around the paper's 40us figure for zstd.
var (
	CodecZstd = Codec{Name: "zstd", RatioFactor: 1.0,
		CompressMedian: 28 * vclock.Microsecond, CompressP99: 90 * vclock.Microsecond,
		DecompressMedian: 22 * vclock.Microsecond, DecompressP99: 75 * vclock.Microsecond}
	CodecLz4 = Codec{Name: "lz4", RatioFactor: 0.75,
		CompressMedian: 10 * vclock.Microsecond, CompressP99: 35 * vclock.Microsecond,
		DecompressMedian: 6 * vclock.Microsecond, DecompressP99: 20 * vclock.Microsecond}
	CodecLzo = Codec{Name: "lzo", RatioFactor: 0.72,
		CompressMedian: 13 * vclock.Microsecond, CompressP99: 45 * vclock.Microsecond,
		DecompressMedian: 8 * vclock.Microsecond, DecompressP99: 28 * vclock.Microsecond}
)

// Allocator models a zswap memory-pool allocator. The production deployment
// evaluated z3fold, zbud, and zsmalloc and chose zsmalloc as the most
// space-efficient (§5.1).
type Allocator struct {
	// Name of the pool allocator.
	Name string
	// MaxPerPage caps how many compressed objects pack into one physical
	// page: zbud packs 2, z3fold packs 3, zsmalloc is size-class based and
	// effectively unbounded for 4KiB objects.
	MaxPerPage float64
	// Overhead is the per-object metadata and fragmentation multiplier.
	Overhead float64
}

// The pool allocators evaluated in §5.1.
var (
	AllocZsmalloc = Allocator{Name: "zsmalloc", MaxPerPage: 16, Overhead: 1.02}
	AllocZ3fold   = Allocator{Name: "z3fold", MaxPerPage: 3, Overhead: 1.06}
	AllocZbud     = Allocator{Name: "zbud", MaxPerPage: 2, Overhead: 1.04}
)

// StoredSize returns the physical pool bytes one page consumes after
// compression with the given effective ratio under this allocator.
func (a Allocator) StoredSize(pageBytes int64, effRatio float64) int64 {
	if effRatio < 1 {
		effRatio = 1
	}
	// The allocator can never pack more than MaxPerPage objects into a
	// physical page, so the effective ratio saturates there.
	if effRatio > a.MaxPerPage {
		effRatio = a.MaxPerPage
	}
	return int64(float64(pageBytes) / effRatio * a.Overhead)
}

// Zswap is a compressed in-DRAM pool for offloaded anonymous pages. Loads
// are pure decompression — fast, no block IO, and free of endurance limits —
// but every stored page still occupies pool DRAM, so the net saving per page
// is pageBytes minus its compressed size.
type Zswap struct {
	codec Codec
	alloc Allocator
	// maxPoolBytes bounds the pool's DRAM footprint; 0 means unbounded.
	maxPoolBytes int64

	rng      *rand.Rand
	compLat  dist.Sampler
	decLat   dist.Sampler
	entries  map[Handle]zswapEntry
	order    []Handle // insertion order, for LRU writeback; may hold freed handles
	next     Handle
	stats    Stats
	rejected int64

	// Registry instruments, nil until EnableTelemetry.
	telStores, telLoads, telRejects *telemetry.Counter
	telRatio                        *telemetry.Histogram
}

type zswapEntry struct {
	logical int64
	stored  int64
}

// NewZswap returns a compressed pool using the given codec and allocator.
func NewZswap(codec Codec, alloc Allocator, maxPoolBytes int64, seed uint64) *Zswap {
	return &Zswap{
		codec:        codec,
		alloc:        alloc,
		maxPoolBytes: maxPoolBytes,
		rng:          dist.NewRand(seed),
		compLat:      dist.FitLogNormal(codec.CompressMedian, codec.CompressP99),
		decLat:       dist.FitLogNormal(codec.DecompressMedian, codec.DecompressP99),
		entries:      make(map[Handle]zswapEntry),
	}
}

// Name implements SwapBackend.
func (z *Zswap) Name() string { return "zswap-" + z.codec.Name + "-" + z.alloc.Name }

// Kind implements SwapBackend.
func (z *Zswap) Kind() Kind { return KindZswap }

// Codec returns the pool's compression algorithm.
func (z *Zswap) Codec() Codec { return z.codec }

// Allocator returns the pool's allocator.
func (z *Zswap) Allocator() Allocator { return z.alloc }

// Store implements SwapBackend.
func (z *Zswap) Store(now vclock.Time, pageBytes int64, compressRatio float64) (StoreResult, error) {
	eff := compressRatio * z.codec.RatioFactor
	stored := z.alloc.StoredSize(pageBytes, eff)
	if z.maxPoolBytes > 0 && z.stats.StoredBytes+stored > z.maxPoolBytes {
		z.rejected++
		if z.telRejects != nil {
			z.telRejects.Inc()
		}
		return StoreResult{}, ErrFull
	}
	if z.telStores != nil {
		z.telStores.Inc()
		// The achieved ratio: logical page size over pool bytes consumed.
		z.telRatio.Record(float64(pageBytes) / float64(stored))
	}
	h := z.next
	z.next++
	z.entries[h] = zswapEntry{logical: pageBytes, stored: stored}
	z.order = append(z.order, h)
	z.stats.StoredPages++
	z.stats.LogicalBytes += pageBytes
	z.stats.StoredBytes += stored
	z.stats.TotalWrites++
	return StoreResult{
		Handle:      h,
		StoredBytes: stored,
		Latency:     z.compLat.Sample(z.rng),
	}, nil
}

// zswapBatchAmortization discounts per-page codec latency for the tail pages
// of a batched submission: one kmap/scheduling round-trip covers the whole
// cluster, so pages after the first pay only the codec's compute cost
// (~60% of the standalone per-page figure).
const zswapBatchAmortization = 0.6

// StoreBatch implements SwapBackend: per-page pool admission (a batch stores
// a prefix on ErrFull), with the per-op overhead amortised across the tail
// pages' compression latencies.
func (z *Zswap) StoreBatch(now vclock.Time, reqs []StoreReq, out []StoreResult) (int, error) {
	for i, req := range reqs {
		r, err := z.Store(now, req.PageBytes, req.CompressRatio)
		if err != nil {
			return i, err
		}
		if i > 0 {
			r.Latency = vclock.Duration(float64(r.Latency) * zswapBatchAmortization)
		}
		out[i] = r
	}
	return len(reqs), nil
}

// Load implements SwapBackend. Zswap loads decompress in place: a memory
// stall with no block IO.
func (z *Zswap) Load(now vclock.Time, h Handle) LoadResult {
	e, ok := z.entries[h]
	if !ok {
		panic(fmt.Sprintf("backend: load of unknown zswap handle %d", h))
	}
	z.release(h, e)
	z.stats.TotalReads++
	if z.telLoads != nil {
		z.telLoads.Inc()
	}
	return LoadResult{Latency: z.decLat.Sample(z.rng), BlockIO: false}
}

// LoadBatch implements SwapBackend: every page still decompresses, but tail
// pages pay the amortised codec cost because the submission overhead is paid
// once for the cluster.
func (z *Zswap) LoadBatch(now vclock.Time, hs []Handle) BatchLoadResult {
	var res BatchLoadResult
	for i, h := range hs {
		e, ok := z.entries[h]
		if !ok {
			panic(fmt.Sprintf("backend: load of unknown zswap handle %d", h))
		}
		z.release(h, e)
		z.stats.TotalReads++
		lat := z.decLat.Sample(z.rng)
		if i > 0 {
			lat = vclock.Duration(float64(lat) * zswapBatchAmortization)
		}
		res.Latency += lat
	}
	if z.telLoads != nil {
		z.telLoads.Add(int64(len(hs)))
	}
	return res
}

// DrainWriteback implements SwapBackend; zswap stores synchronously into the
// pool, so there is nothing to drain.
func (z *Zswap) DrainWriteback(vclock.Time) {}

// Free implements SwapBackend.
func (z *Zswap) Free(h Handle) {
	if e, ok := z.entries[h]; ok {
		z.release(h, e)
	}
}

func (z *Zswap) release(h Handle, e zswapEntry) {
	delete(z.entries, h)
	z.stats.StoredPages--
	z.stats.LogicalBytes -= e.logical
	z.stats.StoredBytes -= e.stored
}

// Stats implements SwapBackend.
func (z *Zswap) Stats() Stats { return z.stats }

// WriteRate implements SwapBackend; zswap has no endurance-limited writes.
func (z *Zswap) WriteRate(vclock.Time) float64 { return 0 }

// Rejected returns how many stores were refused because the pool was full.
func (z *Zswap) Rejected() int64 { return z.rejected }

// PoolBytes returns the pool's current DRAM footprint. The memory manager
// counts this against host memory: zswap savings are logical minus pool
// bytes.
func (z *Zswap) PoolBytes() int64 { return z.stats.StoredBytes }

// MaxPoolBytes returns the pool's configured DRAM budget (0 = unbounded).
func (z *Zswap) MaxPoolBytes() int64 { return z.maxPoolBytes }

// OldestHandle returns the least-recently-stored live entry, if any. The
// tiered backend uses it to pick writeback victims, matching zswap's
// LRU-ordered writeback to the backing swap device.
func (z *Zswap) OldestHandle() (Handle, bool) {
	for len(z.order) > 0 {
		h := z.order[0]
		if _, ok := z.entries[h]; ok {
			return h, true
		}
		z.order = z.order[1:] // drop freed/loaded entries lazily
	}
	return 0, false
}

// EntrySize returns the logical (uncompressed) size of a stored entry.
func (z *Zswap) EntrySize(h Handle) (int64, bool) {
	e, ok := z.entries[h]
	if !ok {
		return 0, false
	}
	return e.logical, true
}

// Writeback removes an entry from the pool for migration to a lower tier,
// returning its logical size and the decompression latency the writeback
// path pays. Unlike Load it is initiated by the backend itself, not a
// fault.
func (z *Zswap) Writeback(h Handle) (logical int64, lat vclock.Duration, ok bool) {
	e, found := z.entries[h]
	if !found {
		return 0, 0, false
	}
	z.release(h, e)
	return e.logical, z.decLat.Sample(z.rng), true
}
