package backend

import (
	"errors"
	"sync"
	"testing"

	"tmo/internal/vclock"
)

// driftChain builds the canonical two-tier test chain: a zstd dense tier
// with the paper's 1.5x admission threshold over unbounded SSD swap.
func driftChain(poolBytes int64) *TierChain {
	specs := []TierSpec{
		{Kind: TierZswap, Codec: CodecZstd, CapacityBytes: poolBytes, MinCompressRatio: 1.5},
		{Kind: TierSSD},
	}
	return NewTierChain(specs, NewSSDDevice(DeviceCatalog[2], 31), 31)
}

// TestChainRetiersDriftedPages: the compress-drift regression. Pages whose
// content stops compressing (chaos "compress x0.3") must be re-tiered on
// their next store instead of stranding in the dense tier — admission runs
// per store, so the refault round-trip lands them on SSD. The reverse drift
// pulls them back up.
func TestChainRetiersDriftedPages(t *testing.T) {
	c := driftChain(64 * pageSize)
	now := vclock.Time(vclock.Second)

	const pages = 20
	reqs := make([]StoreReq, pages)
	out := make([]StoreResult, pages)
	for i := range reqs {
		reqs[i] = StoreReq{PageBytes: pageSize, CompressRatio: 3.0}
	}
	if n, err := c.StoreBatch(now, reqs, out); err != nil || n != pages {
		t.Fatalf("StoreBatch = %d, %v", n, err)
	}
	if st := c.TierStats(0); st.StoredPages != pages {
		t.Fatalf("compressible pages landed outside the dense tier: %+v", st)
	}

	// The content drifts incompressible. The pages refault (swap-in) and are
	// reclaimed again at their new ratio; the chain must route them past the
	// dense tier rather than wasting pool DRAM.
	handles := make([]Handle, pages)
	for i := range out {
		handles[i] = out[i].Handle
	}
	c.LoadBatch(now, handles)
	skipsBefore := c.AdmitSkips()
	for i := range reqs {
		reqs[i] = StoreReq{PageBytes: pageSize, CompressRatio: 3.0 * 0.3, Refault: true}
	}
	if n, err := c.StoreBatch(now, reqs, out); err != nil || n != pages {
		t.Fatalf("drifted StoreBatch = %d, %v", n, err)
	}
	if st := c.TierStats(0); st.StoredPages != 0 {
		t.Fatalf("%d drifted pages stranded in the dense tier", st.StoredPages)
	}
	if st := c.TierStats(1); st.StoredPages != pages {
		t.Fatalf("SSD tier holds %d pages, want %d", st.StoredPages, pages)
	}
	if c.AdmitSkips() <= skipsBefore {
		t.Fatalf("admission skips did not grow: %d", c.AdmitSkips())
	}

	// Drift back: the same round-trip at the original ratio re-tiers the
	// pages up into the dense tier.
	for i := range out {
		handles[i] = out[i].Handle
	}
	c.LoadBatch(now, handles)
	for i := range reqs {
		reqs[i] = StoreReq{PageBytes: pageSize, CompressRatio: 3.0, Refault: true}
	}
	if n, err := c.StoreBatch(now, reqs, out); err != nil || n != pages {
		t.Fatalf("recovered StoreBatch = %d, %v", n, err)
	}
	if st := c.TierStats(0); st.StoredPages != pages {
		t.Fatalf("recovered pages did not return to the dense tier: %+v", st)
	}
}

// TestChainSerialBatchEquivalence: placement is identical whether pages
// arrive one Store at a time or as one StoreBatch — including across tier
// boundaries, where the batch's occupancy projection must agree with the
// serial path's committed state.
func TestChainSerialBatchEquivalence(t *testing.T) {
	build := func() *TierChain {
		specs := []TierSpec{
			{Kind: TierZswap, Codec: CodecLz4, CapacityBytes: 8 * pageSize, MinCompressRatio: 2.0},
			{Kind: TierZswap, Codec: CodecZstd, CapacityBytes: 48 * pageSize, MinCompressRatio: 1.5},
			{Kind: TierSSD},
		}
		return NewTierChain(specs, NewSSDDevice(DeviceCatalog[2], 7), 7)
	}
	batch, serial := build(), build()
	now := vclock.Time(vclock.Second)

	// Ratios cycle fast/dense/flash, with enough fast-tier traffic to spill
	// over its watermark mid-sequence so later stores cross a tier boundary.
	const pages = 60
	ratios := []float64{3.2, 1.7, 1.05}
	reqs := make([]StoreReq, pages)
	for i := range reqs {
		reqs[i] = StoreReq{PageBytes: pageSize, CompressRatio: ratios[i%len(ratios)]}
	}

	bOut := make([]StoreResult, pages)
	if n, err := batch.StoreBatch(now, reqs, bOut); err != nil || n != pages {
		t.Fatalf("StoreBatch = %d, %v", n, err)
	}
	sOut := make([]StoreResult, pages)
	for i, req := range reqs {
		res, err := serial.Store(now, req.PageBytes, req.CompressRatio)
		if err != nil {
			t.Fatalf("serial store %d: %v", i, err)
		}
		sOut[i] = res
	}

	for tier := 0; tier < batch.NumTiers(); tier++ {
		b, s := batch.TierStats(tier), serial.TierStats(tier)
		if b.StoredPages != s.StoredPages || b.StoredBytes != s.StoredBytes || b.LogicalBytes != s.LogicalBytes {
			t.Errorf("tier %d diverged: batch {pages %d, stored %d, logical %d} vs serial {pages %d, stored %d, logical %d}",
				tier, b.StoredPages, b.StoredBytes, b.LogicalBytes, s.StoredPages, s.StoredBytes, s.LogicalBytes)
		}
	}
	if got := batch.TierStats(0).StoredPages; got == 0 || got == pages {
		t.Fatalf("sequence did not span tiers (fast tier holds %d of %d)", got, pages)
	}
	for i := range bOut {
		if bOut[i].StoredBytes != sOut[i].StoredBytes {
			t.Fatalf("page %d stored bytes diverged: %d vs %d", i, bOut[i].StoredBytes, sOut[i].StoredBytes)
		}
	}

	// Draining both chains page-for-page empties them identically.
	hs := make([]Handle, pages)
	for i := range bOut {
		hs[i] = bOut[i].Handle
	}
	batch.LoadBatch(now, hs)
	for i := range sOut {
		serial.Load(now, sOut[i].Handle)
	}
	for tier := 0; tier < batch.NumTiers(); tier++ {
		if b, s := batch.TierStats(tier), serial.TierStats(tier); b.StoredPages != 0 || s.StoredPages != 0 {
			t.Fatalf("tier %d not drained: batch %d, serial %d", tier, b.StoredPages, s.StoredPages)
		}
	}
}

// TestChainErrFullLastTier: a bounded chain surfaces ErrFull only once the
// last tier is out of room, and a batch that hits the wall stores a prefix.
func TestChainErrFullLastTier(t *testing.T) {
	specs := []TierSpec{
		{Kind: TierZswap, Codec: CodecZstd, CapacityBytes: 8 * pageSize},
		{Kind: TierSSD, CapacityBytes: 4 * pageSize},
	}
	c := NewTierChain(specs, NewSSDDevice(DeviceCatalog[2], 13), 13)
	now := vclock.Time(vclock.Second)

	// Refault stores fill every tier to full capacity (cold stores stop at
	// the fast tier's HighWater band).
	reqs := make([]StoreReq, 100)
	for i := range reqs {
		reqs[i] = StoreReq{PageBytes: pageSize, CompressRatio: 1.0, Refault: true}
	}
	out := make([]StoreResult, len(reqs))
	n, err := c.StoreBatch(now, reqs, out)
	if !errors.Is(err, ErrFull) {
		t.Fatalf("overfull StoreBatch err = %v, want ErrFull", err)
	}
	if n == 0 || n >= len(reqs) {
		t.Fatalf("prefix = %d of %d", n, len(reqs))
	}
	if last := c.TierStats(c.NumTiers() - 1); last.StoredPages == 0 {
		t.Fatalf("ErrFull before the last tier took a page")
	}
	if _, err := c.Store(now, pageSize, 1.0); !errors.Is(err, ErrFull) {
		t.Fatalf("single store on a full chain err = %v, want ErrFull", err)
	}

	// The prefix is live: its handles load back, and freeing one page makes
	// room for exactly one more.
	c.Load(now, out[0].Handle)
	if _, err := c.Store(now, pageSize, 1.0); err != nil {
		t.Fatalf("store after load: %v", err)
	}
}

// TestChainWatermarkDemotion: sustained cold inflow pushes the fast tier
// over HighWater; the chain manager demotes LRU entries down-chain until the
// tier is back inside its band, and every migrated page stays loadable.
func TestChainWatermarkDemotion(t *testing.T) {
	const poolBytes = 100 * pageSize
	c := driftChain(poolBytes)
	now := vclock.Time(vclock.Second)

	var handles []Handle
	for i := 0; i < 400; i++ {
		res, err := c.Store(now, pageSize, 2.0)
		if err != nil {
			t.Fatalf("store %d: %v", i, err)
		}
		handles = append(handles, res.Handle)
		if i%8 == 7 {
			now += vclock.Time(vclock.Second)
			c.DrainWriteback(now)
		}
	}
	now += vclock.Time(vclock.Second)
	c.DrainWriteback(now)

	if c.Demotions() == 0 {
		t.Fatalf("no demotions despite 4x oversubscription of the fast tier")
	}
	high := int64(float64(poolBytes) * DefaultHighWater)
	if st := c.TierStats(0); st.StoredBytes > high {
		t.Fatalf("fast tier above HighWater after manage: %d > %d", st.StoredBytes, high)
	}
	if st := c.TierStats(1); st.StoredPages == 0 {
		t.Fatalf("nothing demoted to SSD")
	}

	// Handles survive migration: the outer handle is an indirection, so
	// loading everything back drains the whole chain.
	c.LoadBatch(now, handles)
	if st := c.Stats(); st.StoredPages != 0 || st.LogicalBytes != 0 {
		t.Fatalf("chain not empty after loading every handle: %+v", st)
	}
}

// TestChainDemotionBackpressure: demotion into the SSD tier rides the async
// writeback queue. When the queue is saturated the demotion round ends early
// (counted by DemoteBackpressure) instead of piling more migration traffic
// onto a device that is already behind — and resumes on later ticks.
func TestChainDemotionBackpressure(t *testing.T) {
	const poolBytes = 80 * pageSize
	c := driftChain(poolBytes)
	c.ConfigureWriteback(WritebackConfig{Depth: 1, MaxIOPS: 0.001}) // one drain per ~1000s
	now := vclock.Time(vclock.Second)

	// Occupy the queue's only slot with an incompressible store, then pack
	// the fast tier to capacity with refault stores.
	if _, err := c.Store(now, pageSize, 1.0); err != nil {
		t.Fatalf("ssd store: %v", err)
	}
	reqs := make([]StoreReq, 150)
	out := make([]StoreResult, len(reqs))
	for i := range reqs {
		reqs[i] = StoreReq{PageBytes: pageSize, CompressRatio: 2.0, Refault: true}
	}
	if n, err := c.StoreBatch(now, reqs, out); err != nil || n != len(reqs) {
		t.Fatalf("fill StoreBatch = %d, %v", n, err)
	}
	high := int64(float64(poolBytes) * DefaultHighWater)
	if st := c.TierStats(0); st.StoredBytes <= high {
		t.Fatalf("fast tier not over HighWater: %d <= %d", st.StoredBytes, high)
	}

	now += vclock.Time(vclock.Second)
	c.DrainWriteback(now)
	if c.DemoteBackpressure() == 0 {
		t.Fatalf("saturated queue produced no demotion backpressure")
	}

	// The stall is transient: once the queue drains, later ticks finish the
	// job and the tier settles back inside its band.
	for i := 0; i < 50 && c.TierStats(0).StoredBytes > high; i++ {
		now += vclock.Time(2000 * vclock.Second)
		c.DrainWriteback(now)
	}
	if st := c.TierStats(0); st.StoredBytes > high {
		t.Fatalf("demotion never recovered from backpressure: %d > %d", st.StoredBytes, high)
	}
}

// TestChainConcurrentHosts: one chain per goroutine, driven in parallel —
// the witness for the package's data-race gate (a fleet holds thousands of
// independent chains on shared codec/device catalogs).
func TestChainConcurrentHosts(t *testing.T) {
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < len(errs); g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := driftChain(32 * pageSize)
			now := vclock.Time(vclock.Second)
			var handles []Handle
			for i := 0; i < 200; i++ {
				ratio := 2.5
				if i%3 == 0 {
					ratio = 1.1
				}
				res, err := c.Store(now, pageSize, ratio)
				if err != nil {
					errs[g] = err
					return
				}
				handles = append(handles, res.Handle)
				if i%16 == 15 {
					now += vclock.Time(vclock.Second)
					c.DrainWriteback(now)
					c.LoadBatch(now, handles[:4])
					handles = handles[4:]
				}
			}
			c.LoadBatch(now, handles)
			if st := c.Stats(); st.StoredPages != 0 {
				errs[g] = errors.New("chain not drained")
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("host %d: %v", g, err)
		}
	}
}
