package backend

import (
	"tmo/internal/telemetry"
	"tmo/internal/trace"
	"tmo/internal/vclock"
)

// Tiered implements the backend hierarchy the paper sketches as future work
// in §5.2: "automatically using zswap for warmer pages and using SSD for
// colder or less-compressible pages", with the kernel balancing across the
// pools.
//
// Placement policy:
//
//   - Pages whose content compresses below MinCompressRatio skip the pool
//     and go straight to SSD — compressing quantized model data (§4.1's
//     1.3-1.4x) wastes DRAM for little saving.
//   - Everything else lands in the zswap pool. When the pool exceeds its
//     DRAM budget, the coldest pool entries are written back to SSD in LRU
//     order, exactly like zswap's writeback to its backing device. Recently
//     offloaded (warmer) pages therefore reload at decompression speed while
//     long-cold pages migrate to flash.
//
// The Tiered handle is an indirection: a page's handle stays valid across
// writeback; only the inner location changes.
type Tiered struct {
	warm *Zswap
	cold *SSDSwap
	// MinCompressRatio routes poorly compressing pages directly to SSD.
	minCompressRatio float64

	entries map[Handle]tieredEntry
	inverse map[Handle]Handle // warm inner handle -> outer handle
	next    Handle

	writebacks int64
	directSSD  int64

	// Scratch partitions for LoadBatch, reused across calls so the batched
	// fault path stays zero-alloc.
	warmScratch, coldScratch []Handle

	// Registry instruments and decision log, nil until enabled.
	telWritebacks, telDirectSSD *telemetry.Counter
	trace                       *trace.Log
}

type tieredEntry struct {
	warm  bool
	inner Handle
}

// NewTiered combines a zswap pool (which must have a finite MaxPoolBytes)
// with SSD swap into one hierarchy.
func NewTiered(warm *Zswap, cold *SSDSwap, minCompressRatio float64) *Tiered {
	if warm.MaxPoolBytes() <= 0 {
		panic("backend: tiered zswap tier needs a finite pool budget")
	}
	if minCompressRatio < 1 {
		minCompressRatio = 1
	}
	return &Tiered{
		warm:             warm,
		cold:             cold,
		minCompressRatio: minCompressRatio,
		entries:          make(map[Handle]tieredEntry),
		inverse:          make(map[Handle]Handle),
	}
}

// Name implements SwapBackend.
func (t *Tiered) Name() string { return "tiered(" + t.warm.Name() + "+" + t.cold.Name() + ")" }

// Kind implements SwapBackend; the hierarchy fronts as zswap because warm
// loads dominate, but Load reports block IO accurately per page.
func (t *Tiered) Kind() Kind { return KindZswap }

// Writebacks returns how many pool entries have migrated to SSD.
func (t *Tiered) Writebacks() int64 { return t.writebacks }

// DirectSSD returns how many pages skipped the pool for poor
// compressibility.
func (t *Tiered) DirectSSD() int64 { return t.directSSD }

// WarmPages and ColdPages report current tier occupancy.
func (t *Tiered) WarmPages() int64 { return t.warm.Stats().StoredPages }

// ColdPages reports pages currently on the SSD tier.
func (t *Tiered) ColdPages() int64 { return t.cold.Stats().StoredPages }

// Store implements SwapBackend.
func (t *Tiered) Store(now vclock.Time, pageBytes int64, compressRatio float64) (StoreResult, error) {
	outer := t.next
	t.next++

	// Poorly compressible content goes straight to flash.
	if compressRatio*t.warm.Codec().RatioFactor < t.minCompressRatio {
		res, err := t.cold.Store(now, pageBytes, compressRatio)
		if err != nil {
			return StoreResult{}, err
		}
		t.directSSD++
		if t.telDirectSSD != nil {
			t.telDirectSSD.Inc()
		}
		t.entries[outer] = tieredEntry{warm: false, inner: res.Handle}
		res.Handle = outer
		return res, nil
	}

	// Make room in the pool by writing back the coldest entries.
	var extraLat vclock.Duration
	for i := 0; i < 64; i++ {
		res, err := t.warm.Store(now, pageBytes, compressRatio)
		if err == nil {
			t.entries[outer] = tieredEntry{warm: true, inner: res.Handle}
			t.inverse[res.Handle] = outer
			res.Handle = outer
			res.Latency += extraLat
			return res, nil
		}
		lat, ok := t.writebackOldest(now)
		if !ok {
			// Pool full of nothing evictable (should not happen); fall
			// back to flash.
			break
		}
		extraLat += lat
	}
	res, err := t.cold.Store(now, pageBytes, compressRatio)
	if err != nil {
		return StoreResult{}, err
	}
	t.directSSD++
	if t.telDirectSSD != nil {
		t.telDirectSSD.Inc()
	}
	t.entries[outer] = tieredEntry{warm: false, inner: res.Handle}
	res.Handle = outer
	res.Latency += extraLat
	return res, nil
}

// writebackOldest migrates the pool's LRU entry to SSD.
func (t *Tiered) writebackOldest(now vclock.Time) (vclock.Duration, bool) {
	inner, ok := t.warm.OldestHandle()
	if !ok {
		return 0, false
	}
	outer, ok := t.inverse[inner]
	if !ok {
		panic("backend: tiered inverse map out of sync")
	}
	logical, lat, ok := t.warm.Writeback(inner)
	if !ok {
		return 0, false
	}
	delete(t.inverse, inner)
	// Writebacks of already-compressed data still write the full page:
	// swap stores pages uncompressed.
	res, err := t.cold.Store(now, logical, 1)
	if err != nil {
		// SSD full: drop the writeback and report failure so the caller
		// falls back; the entry is lost from the hierarchy, so re-insert
		// into the pool unbounded? Simpler and safe: panic — the swap
		// partition is sized at multiples of DRAM and cannot fill before
		// the pool budget in any configured experiment.
		panic("backend: tiered cold tier full during writeback: " + err.Error())
	}
	t.entries[outer] = tieredEntry{warm: false, inner: res.Handle}
	t.writebacks++
	if t.telWritebacks != nil {
		t.telWritebacks.Inc()
	}
	if t.trace != nil {
		t.trace.Emit(now, trace.KindBackendWriteback, t.warm.Name(),
			"migrated %d B pool LRU entry to %s", logical, t.cold.Name())
	}
	return lat, true
}

// Load implements SwapBackend.
func (t *Tiered) Load(now vclock.Time, h Handle) LoadResult {
	e, ok := t.entries[h]
	if !ok {
		panic("backend: load of unknown tiered handle")
	}
	delete(t.entries, h)
	if e.warm {
		delete(t.inverse, e.inner)
		return t.warm.Load(now, e.inner)
	}
	return t.cold.Load(now, e.inner)
}

// StoreBatch implements SwapBackend via the per-page fallback: each page's
// placement decision (pool vs direct-SSD, plus LRU writeback to make room)
// is inherently per-page. The cold tier's own writeback queue still batches
// the resulting device writes at drain time.
func (t *Tiered) StoreBatch(now vclock.Time, reqs []StoreReq, out []StoreResult) (int, error) {
	return SerialStoreBatch(t, now, reqs, out)
}

// LoadBatch implements SwapBackend: the cluster is partitioned by tier, each
// tier serves its share as one submission, and the latencies sum — the warm
// pages decompress while the SSD seeks once for all the cold ones.
func (t *Tiered) LoadBatch(now vclock.Time, hs []Handle) BatchLoadResult {
	t.warmScratch = t.warmScratch[:0]
	t.coldScratch = t.coldScratch[:0]
	for _, h := range hs {
		e, ok := t.entries[h]
		if !ok {
			panic("backend: load of unknown tiered handle")
		}
		delete(t.entries, h)
		if e.warm {
			delete(t.inverse, e.inner)
			t.warmScratch = append(t.warmScratch, e.inner)
		} else {
			t.coldScratch = append(t.coldScratch, e.inner)
		}
	}
	var res BatchLoadResult
	if len(t.warmScratch) > 0 {
		res.Latency += t.warm.LoadBatch(now, t.warmScratch).Latency
	}
	if len(t.coldScratch) > 0 {
		res.Latency += t.cold.LoadBatch(now, t.coldScratch).Latency
		res.BlockIO = true
	}
	return res
}

// DrainWriteback implements SwapBackend: only the SSD tier queues writes.
func (t *Tiered) DrainWriteback(now vclock.Time) { t.cold.DrainWriteback(now) }

// Free implements SwapBackend.
func (t *Tiered) Free(h Handle) {
	e, ok := t.entries[h]
	if !ok {
		return
	}
	delete(t.entries, h)
	if e.warm {
		delete(t.inverse, e.inner)
		t.warm.Free(e.inner)
	} else {
		t.cold.Free(e.inner)
	}
}

// Stats implements SwapBackend, merging both tiers.
func (t *Tiered) Stats() Stats {
	w, c := t.warm.Stats(), t.cold.Stats()
	return Stats{
		StoredPages:  w.StoredPages + c.StoredPages,
		LogicalBytes: w.LogicalBytes + c.LogicalBytes,
		StoredBytes:  w.StoredBytes + c.StoredBytes,
		TotalWrites:  w.TotalWrites + c.TotalWrites,
		TotalReads:   w.TotalReads + c.TotalReads,
		WrittenBytes: w.WrittenBytes + c.WrittenBytes,
	}
}

// WriteRate implements SwapBackend: only the SSD tier wears.
func (t *Tiered) WriteRate(now vclock.Time) float64 { return t.cold.WriteRate(now) }

// PoolBytes implements SwapBackend: only the zswap tier consumes DRAM.
func (t *Tiered) PoolBytes() int64 { return t.warm.PoolBytes() }
