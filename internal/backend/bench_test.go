package backend

import (
	"testing"

	"tmo/internal/vclock"
)

func BenchmarkZswapStoreLoad(b *testing.B) {
	z := NewZswap(CodecZstd, AllocZsmalloc, 0, 91)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := z.Store(vclock.Time(i), pageSize, 3)
		if err != nil {
			b.Fatal(err)
		}
		z.Load(vclock.Time(i), res.Handle)
	}
}

func BenchmarkSSDRead(b *testing.B) {
	dev := NewSSDDevice(DeviceCatalog[2], 92)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev.Read(vclock.Time(i) * vclock.Time(vclock.Millisecond))
	}
}

func BenchmarkTieredStoreLoad(b *testing.B) {
	tr := NewTierChain(DefaultChainSpecs(64<<20, 0), NewSSDDevice(DeviceCatalog[2], 94), 93)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ratio := 3.0
		if i%3 == 0 {
			ratio = 1.1 // a third of the traffic routes to flash
		}
		res, err := tr.Store(vclock.Time(i), pageSize, ratio)
		if err != nil {
			b.Fatal(err)
		}
		tr.Load(vclock.Time(i), res.Handle)
	}
}
