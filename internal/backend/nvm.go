package backend

import (
	"fmt"
	"math/rand/v2"

	"tmo/internal/dist"
	"tmo/internal/vclock"
)

// This file models the emerging offload tiers the paper anticipates (§2.5,
// §5.2): byte-addressable NVM (Optane-class persistent memory) and
// CXL-attached memory. Both slot between the zswap pool and NVMe SSD on the
// latency spectrum, have no compression step and no block-IO path, and their
// endurance is high enough that TMO's SSD write regulation is unnecessary.
//
// Faults against these tiers are therefore pure memory stalls (no IO
// pressure), like zswap, but without the pool's DRAM overhead: a page held
// in NVM/CXL costs no host DRAM at all.

// NVMSpec describes one byte-addressable slow-memory device.
type NVMSpec struct {
	// Kind is a catalog label ("nvm-optane", "cxl-dram").
	Kind string
	// Read latency distribution for a 4KiB page migration.
	ReadMedian, ReadP99 vclock.Duration
	// CapacityBytes bounds the tier; 0 = unbounded.
	CapacityBytes int64
}

// Published-order-of-magnitude device points: Optane PMem ~ a few us per
// 4KiB read; CXL-attached DRAM adds ~3-10x DRAM latency, i.e. well under a
// microsecond per line but on the order of a microsecond for a page move.
var (
	// SpecNVMOptane models an Optane-class persistent-memory module.
	SpecNVMOptane = NVMSpec{Kind: "nvm-optane",
		ReadMedian: 4 * vclock.Microsecond, ReadP99: 12 * vclock.Microsecond}
	// SpecCXLDRAM models DRAM behind a CXL link.
	SpecCXLDRAM = NVMSpec{Kind: "cxl-dram",
		ReadMedian: 2 * vclock.Microsecond, ReadP99: 5 * vclock.Microsecond}
)

// NVM is a swap backend over byte-addressable slow memory.
type NVM struct {
	spec NVMSpec

	rng     *rand.Rand
	readLat dist.Sampler

	pageBytes map[Handle]int64
	next      Handle
	stats     Stats
}

// NewNVM returns a backend following spec.
func NewNVM(spec NVMSpec, seed uint64) *NVM {
	return &NVM{
		spec:      spec,
		rng:       dist.NewRand(seed),
		readLat:   dist.FitLogNormal(spec.ReadMedian, spec.ReadP99),
		pageBytes: make(map[Handle]int64),
	}
}

// Spec returns the device description.
func (n *NVM) Spec() NVMSpec { return n.spec }

// Name implements SwapBackend.
func (n *NVM) Name() string { return n.spec.Kind }

// Kind implements SwapBackend: NVM/CXL loads are memory stalls without
// block IO, the same pressure signature as zswap.
func (n *NVM) Kind() Kind { return KindZswap }

// Store implements SwapBackend. Pages move uncompressed; the store is a
// memory copy whose cost is negligible at the simulation's resolution.
func (n *NVM) Store(now vclock.Time, pageBytes int64, _ float64) (StoreResult, error) {
	if n.spec.CapacityBytes > 0 && n.stats.StoredBytes+pageBytes > n.spec.CapacityBytes {
		return StoreResult{}, ErrFull
	}
	h := n.next
	n.next++
	n.pageBytes[h] = pageBytes
	n.stats.StoredPages++
	n.stats.LogicalBytes += pageBytes
	n.stats.StoredBytes += pageBytes
	n.stats.TotalWrites++
	return StoreResult{Handle: h, StoredBytes: pageBytes}, nil
}

// Load implements SwapBackend.
func (n *NVM) Load(now vclock.Time, h Handle) LoadResult {
	bytes, ok := n.pageBytes[h]
	if !ok {
		panic(fmt.Sprintf("backend: load of unknown nvm handle %d", h))
	}
	n.release(h, bytes)
	n.stats.TotalReads++
	return LoadResult{Latency: n.readLat.Sample(n.rng), BlockIO: false}
}

// StoreBatch implements SwapBackend via the per-page fallback: NVM stores
// are byte-copies with no amortisable fixed cost.
func (n *NVM) StoreBatch(now vclock.Time, reqs []StoreReq, out []StoreResult) (int, error) {
	return SerialStoreBatch(n, now, reqs, out)
}

// LoadBatch implements SwapBackend via the per-page fallback: each page move
// is an independent memory copy.
func (n *NVM) LoadBatch(now vclock.Time, hs []Handle) BatchLoadResult {
	return SerialLoadBatch(n, now, hs)
}

// DrainWriteback implements SwapBackend; NVM stores complete synchronously.
func (n *NVM) DrainWriteback(vclock.Time) {}

// Free implements SwapBackend.
func (n *NVM) Free(h Handle) {
	if bytes, ok := n.pageBytes[h]; ok {
		n.release(h, bytes)
	}
}

func (n *NVM) release(h Handle, bytes int64) {
	delete(n.pageBytes, h)
	n.stats.StoredPages--
	n.stats.LogicalBytes -= bytes
	n.stats.StoredBytes -= bytes
}

// Stats implements SwapBackend.
func (n *NVM) Stats() Stats { return n.stats }

// WriteRate implements SwapBackend; NVM endurance is not a limiting factor
// at paging rates, so nothing is reported for regulation.
func (n *NVM) WriteRate(vclock.Time) float64 { return 0 }

// PoolBytes implements SwapBackend; the tier is its own capacity, costing
// no host DRAM.
func (n *NVM) PoolBytes() int64 { return 0 }
