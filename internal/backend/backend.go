// Package backend implements TMO's offload backends: the slow-memory tiers
// that hold memory offloaded from DRAM (§2.5, §3.4.1 of the paper).
//
// Two swap backends are provided — a zswap-style compressed memory pool and
// NVMe SSD swap — plus the filesystem path used to reload evicted file
// cache. SSD devices are modeled after the fleet heterogeneity of Fig. 5:
// seven device generations (A-G) spanning a 470us-9.3ms p99 read-latency
// range, with per-device IOPS ceilings and write-endurance budgets.
//
// The memory manager stores and loads pages through the SwapBackend
// interface without knowing which tier it is talking to; the resulting
// fault latencies feed PSI, which is how Senpai adapts to backend
// performance without device-specific configuration.
package backend

import (
	"errors"

	"tmo/internal/vclock"
)

// Kind distinguishes the backend tiers, which matters for PSI accounting: a
// zswap load is pure decompression (memory stall only) while an SSD load is
// block IO (memory and IO stall).
type Kind int

// The supported backend kinds.
const (
	KindZswap Kind = iota
	KindSSD
)

// String names the backend kind.
func (k Kind) String() string {
	if k == KindZswap {
		return "zswap"
	}
	return "ssd"
}

// Handle identifies a stored page within a backend.
type Handle uint64

// ErrFull is returned by Store when the backend has no room: a zswap pool at
// its size limit or a swap device out of space. The reclaim path treats it
// as a failed reclaim of that page.
var ErrFull = errors.New("backend: no space for offloaded page")

// StoreResult describes a completed page offload.
type StoreResult struct {
	Handle Handle
	// StoredBytes is the physical space consumed in the backend after
	// compression and allocator overhead; equals the page size for SSD swap.
	StoredBytes int64
	// DeviceWrite is the number of bytes written to a wear-limited device;
	// zero for zswap.
	DeviceWrite int64
	// Latency is the synchronous cost paid by the reclaimer (compression
	// time for zswap; SSD swap-out writes are asynchronous writeback, so
	// this is zero for SSD).
	Latency vclock.Duration
}

// LoadResult describes a completed page load (swap-in).
type LoadResult struct {
	// Latency is the synchronous fault cost paid by the faulting task.
	Latency vclock.Duration
	// BlockIO reports whether the load performed block IO, in which case
	// the stall also counts toward IO pressure.
	BlockIO bool
}

// StoreReq describes one page of a batched store submission.
type StoreReq struct {
	// PageBytes is the page size being offloaded.
	PageBytes int64
	// CompressRatio is the content's intrinsic compression ratio
	// (uncompressed/compressed, >= 1); ignored by uncompressed tiers.
	CompressRatio float64
	// Refault marks a page that demand-faulted back since its last offload.
	// Multi-tier chains bias such pages toward faster tiers (promotion on
	// refault); single-tier backends ignore it.
	Refault bool
}

// BatchLoadResult describes a completed batched load: one submission
// covering every page of a swap cluster (the demand page plus its readahead
// neighbours).
type BatchLoadResult struct {
	// Latency is the submission-to-completion time of the whole batch. The
	// faulting task waits it out; coalesced faulters on the same batch wait
	// only the remainder.
	Latency vclock.Duration
	// BlockIO reports whether any page in the batch performed block IO.
	BlockIO bool
}

// Stats is a point-in-time summary of a backend's contents and traffic.
type Stats struct {
	StoredPages  int64 // pages currently held
	LogicalBytes int64 // uncompressed bytes currently held
	StoredBytes  int64 // physical bytes currently consumed
	TotalWrites  int64 // cumulative page stores
	TotalReads   int64 // cumulative page loads
	WrittenBytes int64 // cumulative bytes written to a wear-limited device
}

// SwapBackend is a tier that holds offloaded anonymous pages.
type SwapBackend interface {
	// Name returns a human-readable backend name for reports.
	Name() string
	// Kind reports the tier type.
	Kind() Kind
	// Store offloads one page of pageBytes whose content compresses by
	// compressRatio (uncompressed/compressed, >= 1).
	Store(now vclock.Time, pageBytes int64, compressRatio float64) (StoreResult, error)
	// StoreBatch offloads len(reqs) pages in one submission, filling
	// out[:n] with per-page results (len(out) must be >= len(reqs)). A
	// batch stores a prefix: on ErrFull it reports how many pages fit
	// before the backend ran out of room. Batched tiers pay fixed
	// per-submission costs once; SerialStoreBatch is the per-page
	// fallback for backends without a native batch path.
	StoreBatch(now vclock.Time, reqs []StoreReq, out []StoreResult) (int, error)
	// Load brings a stored page back to DRAM and releases its space.
	Load(now vclock.Time, h Handle) LoadResult
	// LoadBatch brings every page in hs back to DRAM in one submission and
	// releases their space. An SSD batch pays seek/queue/stall cost once
	// plus a byte-rate transfer term; zswap batches amortise per-op
	// overhead across the tail. SerialLoadBatch is the per-page fallback.
	LoadBatch(now vclock.Time, hs []Handle) BatchLoadResult
	// DrainWriteback completes asynchronous swap-out writeback due by now
	// (depth-limited queue draining on the virtual clock). Backends
	// without a device-side queue treat it as a no-op. The simulator calls
	// it once per tick; backends also drain lazily on their own
	// operations, so standalone use without a tick loop stays correct.
	DrainWriteback(now vclock.Time)
	// Free releases a stored page without loading it (the owner exited).
	Free(h Handle)
	// Stats reports current contents and cumulative traffic.
	Stats() Stats
	// WriteRate reports the recent device write rate in bytes/second; zero
	// for backends without endurance limits. Senpai's write regulation
	// (Fig. 14) consumes this.
	WriteRate(now vclock.Time) float64
	// PoolBytes reports how much host DRAM the backend itself consumes for
	// stored pages: the compressed-pool footprint for zswap, zero for SSD
	// swap. The memory manager charges this against host capacity, so the
	// net saving of a zswap'd page is its size minus its compressed size.
	PoolBytes() int64
}

// SerialLoadBatch is the default per-page LoadBatch fallback: each page pays
// its full individual load cost, with no batching benefit. Backends whose
// per-page loads have no amortisable fixed cost (and external test doubles)
// implement LoadBatch with it.
func SerialLoadBatch(s SwapBackend, now vclock.Time, hs []Handle) BatchLoadResult {
	var res BatchLoadResult
	for _, h := range hs {
		r := s.Load(now, h)
		res.Latency += r.Latency
		res.BlockIO = res.BlockIO || r.BlockIO
	}
	return res
}

// SerialStoreBatch is the default per-page StoreBatch fallback: pages are
// stored one at a time until the first ErrFull, whose position is reported.
func SerialStoreBatch(s SwapBackend, now vclock.Time, reqs []StoreReq, out []StoreResult) (int, error) {
	for i, req := range reqs {
		r, err := s.Store(now, req.PageBytes, req.CompressRatio)
		if err != nil {
			return i, err
		}
		out[i] = r
	}
	return len(reqs), nil
}
