package backend

import (
	"fmt"
	"strings"

	"tmo/internal/telemetry"
	"tmo/internal/trace"
	"tmo/internal/vclock"
)

// This file implements the N-tier software-defined compressed-memory chain
// following "Taming Server Memory TCO with Multiple Software-Defined
// Compressed Tiers" (arXiv 2404.13886): an ordered list of tiers with
// distinct latency/ratio points — e.g. an lz4 fast tier over a zstd dense
// tier over SSD swap — where new pages land in the fastest tier with
// headroom, cold pages demote down-chain when a tier crosses its pressure
// watermark, and refaulting pages promote back up so a page's resting tier
// tracks its actual reuse distance.

// TierKind distinguishes the two tier substrates a chain can stack.
type TierKind int

// The supported tier kinds.
const (
	// TierZswap is a compressed in-DRAM pool (codec + allocator model).
	TierZswap TierKind = iota
	// TierSSD is uncompressed swap on the host SSD. At most one SSD tier
	// is allowed and it must be the last (slowest) tier.
	TierSSD
)

// TierSpec describes one tier of a chain: its substrate, capacity, and
// placement thresholds.
type TierSpec struct {
	// Kind selects the substrate.
	Kind TierKind
	// Codec is the compression algorithm for TierZswap tiers; its
	// RatioFactor and latency distributions give the tier its point on the
	// latency/ratio curve. Ignored for TierSSD.
	Codec Codec
	// Alloc is the pool allocator for TierZswap tiers; the zero value
	// defaults to zsmalloc. Ignored for TierSSD.
	Alloc Allocator
	// CapacityBytes bounds the tier: the pool's DRAM budget for TierZswap
	// (must be finite) or the partition size for TierSSD (0 = unbounded).
	CapacityBytes int64
	// MinCompressRatio is the admission threshold for TierZswap tiers: a
	// page is admitted only when its effective ratio (content ratio x the
	// codec's RatioFactor) reaches it, so incompressible pages skip dense
	// tiers instead of wasting pool DRAM. Values below 1 mean no threshold.
	MinCompressRatio float64
	// HighWater and LowWater are occupancy fractions of CapacityBytes. A
	// tier above HighWater demotes LRU entries down-chain until it is back
	// under LowWater; the band above HighWater is reserved headroom that
	// only refault promotions may fill. Zero values default to 0.90/0.75.
	HighWater, LowWater float64
}

// Default watermark fractions for TierSpec.
const (
	DefaultHighWater = 0.90
	DefaultLowWater  = 0.75
)

// normalize fills zero-valued defaults in place.
func (ts *TierSpec) normalize() {
	if ts.Kind == TierZswap && ts.Alloc.Name == "" {
		ts.Alloc = AllocZsmalloc
	}
	if ts.HighWater <= 0 || ts.HighWater > 1 {
		ts.HighWater = DefaultHighWater
	}
	if ts.LowWater <= 0 || ts.LowWater >= ts.HighWater {
		ts.LowWater = DefaultLowWater
		if ts.LowWater >= ts.HighWater {
			ts.LowWater = ts.HighWater * 0.8
		}
	}
	if ts.MinCompressRatio < 1 {
		ts.MinCompressRatio = 1
	}
}

// Label names the tier for telemetry and signatures: the codec name for
// compressed tiers, "ssd" for the swap tier.
func (ts TierSpec) Label() string {
	if ts.Kind == TierSSD {
		return "ssd"
	}
	return ts.Codec.Name
}

// CodecByName resolves a codec by its catalog name (zstd, lz4, lzo).
func CodecByName(name string) (Codec, bool) {
	switch name {
	case "zstd":
		return CodecZstd, true
	case "lz4":
		return CodecLz4, true
	case "lzo":
		return CodecLzo, true
	}
	return Codec{}, false
}

// DefaultChainSpecs returns the classic two-tier layout the old Tiered
// backend hard-coded: a zstd pool of poolBytes fronting SSD swap of
// swapBytes, with the paper's 1.5x admission threshold routing
// poorly-compressing pages straight to flash.
func DefaultChainSpecs(poolBytes, swapBytes int64) []TierSpec {
	return []TierSpec{
		{Kind: TierZswap, Codec: CodecZstd, CapacityBytes: poolBytes, MinCompressRatio: 1.5},
		{Kind: TierSSD, CapacityBytes: swapBytes},
	}
}

// demoteBatchPages bounds how many LRU victims one demotion round moves
// down-chain: large enough to amortise the destination's per-submission
// cost, small enough that a single manage pass cannot monopolise the tick.
const demoteBatchPages = 32

// chainEntry locates a page inside the chain. The outer Handle held by the
// memory manager is an indirection: demotion and promotion rewrite only the
// entry, so mm handles survive tier migration.
type chainEntry struct {
	tier    int
	inner   Handle
	logical int64
	// ratio is the content's intrinsic compression ratio, remembered so
	// demotion can re-run admission at the destination tier.
	ratio float64
}

// chainTier is one instantiated tier.
type chainTier struct {
	spec TierSpec
	zs   *Zswap   // TierZswap tiers
	ssd  *SSDSwap // TierSSD tier (last only)
	// inverse maps inner pool handles back to outer handles so watermark
	// demotion can resolve LRU victims. Compressed tiers only.
	inverse map[Handle]Handle

	// Registry instruments, nil until EnableTelemetry.
	telStores, telDemotions, telRefaults *telemetry.Counter
}

func (t *chainTier) backend() SwapBackend {
	if t.ssd != nil {
		return t.ssd
	}
	return t.zs
}

// TierChain is an ordered chain of offload tiers implementing SwapBackend.
// Tier 0 is the fastest; placement walks down-chain until a tier admits the
// page and has headroom, ErrFull surfaces only when the last tier is full.
type TierChain struct {
	tiers   []chainTier
	entries map[Handle]chainEntry
	next    Handle

	demotions   int64 // pages moved down-chain by watermark pressure
	promotions  int64 // refault stores that landed above their cold tier
	admitSkips  int64 // tier skips due to MinCompressRatio
	demoteStall int64 // demotion rounds cut short by writeback backpressure

	// Scratch, reused across calls so the batched fault and reclaim paths
	// stay zero-alloc.
	loadScratch  [][]Handle
	storeReqs    [][]StoreReq
	storeOut     [][]StoreResult
	storeIdx     [][]int
	storeOuters  []Handle
	storePending []int64
	demoteOuters []Handle
	demoteReqs   []StoreReq
	demoteOut    []StoreResult
	oneReq       [1]StoreReq
	oneOut       [1]StoreResult

	// Registry instruments and decision log, nil until enabled.
	telPromotions, telAdmitSkips, telDemoteStall *telemetry.Counter
	trace                                        *trace.Log
}

// NewTierChain builds a chain from specs. Compressed tiers need a finite
// CapacityBytes; at most one SSD tier is allowed and it must be last,
// carved from dev (which the filesystem may share). seed derives each
// compressed tier's latency-sampling stream.
func NewTierChain(specs []TierSpec, dev *SSDDevice, seed uint64) *TierChain {
	if len(specs) == 0 {
		panic("backend: tier chain needs at least one tier")
	}
	c := &TierChain{
		entries:      make(map[Handle]chainEntry),
		loadScratch:  make([][]Handle, len(specs)),
		storeReqs:    make([][]StoreReq, len(specs)),
		storeOut:     make([][]StoreResult, len(specs)),
		storeIdx:     make([][]int, len(specs)),
		storePending: make([]int64, len(specs)),
	}
	for i, ts := range specs {
		ts.normalize()
		switch ts.Kind {
		case TierZswap:
			if ts.CapacityBytes <= 0 {
				panic(fmt.Sprintf("backend: chain tier %d (%s) needs a finite pool budget", i, ts.Label()))
			}
			zs := NewZswap(ts.Codec, ts.Alloc, ts.CapacityBytes, seed+uint64(i)*0x9e3779b9)
			c.tiers = append(c.tiers, chainTier{spec: ts, zs: zs, inverse: make(map[Handle]Handle)})
		case TierSSD:
			if i != len(specs)-1 {
				panic(fmt.Sprintf("backend: chain SSD tier must be last (got position %d)", i))
			}
			if dev == nil {
				panic("backend: chain SSD tier needs a device")
			}
			c.tiers = append(c.tiers, chainTier{spec: ts, ssd: NewSSDSwap(dev, ts.CapacityBytes)})
		default:
			panic(fmt.Sprintf("backend: unknown tier kind %d", ts.Kind))
		}
	}
	return c
}

// Name implements SwapBackend.
func (c *TierChain) Name() string {
	labels := make([]string, len(c.tiers))
	for i, t := range c.tiers {
		labels[i] = t.spec.Label()
	}
	return "chain(" + strings.Join(labels, "+") + ")"
}

// Kind implements SwapBackend; the chain fronts as zswap because fast-tier
// loads dominate, and Load reports block IO accurately per page.
func (c *TierChain) Kind() Kind { return KindZswap }

// NumTiers returns the chain length.
func (c *TierChain) NumTiers() int { return len(c.tiers) }

// TierSpecs returns a copy of the normalized tier layout.
func (c *TierChain) TierSpecs() []TierSpec {
	out := make([]TierSpec, len(c.tiers))
	for i, t := range c.tiers {
		out[i] = t.spec
	}
	return out
}

// TierStats reports tier i's contents and traffic.
func (c *TierChain) TierStats(i int) Stats { return c.tiers[i].backend().Stats() }

// Demotions returns how many pages watermark pressure has moved down-chain.
func (c *TierChain) Demotions() int64 { return c.demotions }

// Promotions returns how many refaulting pages landed in a faster tier than
// a cold store would have reached.
func (c *TierChain) Promotions() int64 { return c.promotions }

// AdmitSkips returns how many tier placements skipped a compressed tier
// because the content failed its MinCompressRatio admission threshold.
func (c *TierChain) AdmitSkips() int64 { return c.admitSkips }

// DemoteBackpressure returns how many demotion rounds were cut short by the
// SSD writeback queue's backpressure.
func (c *TierChain) DemoteBackpressure() int64 { return c.demoteStall }

// SSD returns the chain's SSD tier, if any.
func (c *TierChain) SSD() *SSDSwap {
	last := &c.tiers[len(c.tiers)-1]
	return last.ssd
}

// CapacityBytes returns the chain's total capacity across tiers, or 0 if
// any tier is unbounded.
func (c *TierChain) CapacityBytes() int64 {
	var sum int64
	for _, t := range c.tiers {
		if t.spec.CapacityBytes <= 0 {
			return 0
		}
		sum += t.spec.CapacityBytes
	}
	return sum
}

// ConfigureWriteback replaces the SSD tier's async writeback-queue limits;
// a no-op for all-compressed chains.
func (c *TierChain) ConfigureWriteback(cfg WritebackConfig) {
	if s := c.SSD(); s != nil {
		s.ConfigureWriteback(cfg)
	}
}

// admissible reports whether tier t admits content with the given intrinsic
// compression ratio.
func (c *TierChain) admissible(t int, ratio float64) bool {
	tier := &c.tiers[t]
	if tier.ssd != nil {
		return true
	}
	return ratio*tier.spec.Codec.RatioFactor >= tier.spec.MinCompressRatio
}

// storedSize returns the physical bytes one page would consume in tier t —
// exactly the size the tier's own admission check will use.
func (c *TierChain) storedSize(t int, pageBytes int64, ratio float64) int64 {
	tier := &c.tiers[t]
	if tier.ssd != nil {
		return pageBytes
	}
	return tier.spec.Alloc.StoredSize(pageBytes, ratio*tier.spec.Codec.RatioFactor)
}

// fits reports whether tier t can hold stored more bytes on top of its
// current occupancy plus pending (bytes already claimed by earlier pages of
// the same batch). A non-refault store into a non-last tier is admitted
// while occupancy sits at or below the HighWater line — it may cross the
// line (which arms the chain manager's next demotion pass) but once over,
// further cold stores bypass down-chain: the band above HighWater is
// reserved headroom for refault promotions until the manager drains the
// tier back under LowWater. Refault stores and the last tier fill to full
// capacity, so ErrFull means the whole chain is out of room.
func (c *TierChain) fits(t int, stored, pending int64, refault bool) bool {
	tier := &c.tiers[t]
	cap := tier.spec.CapacityBytes
	if cap <= 0 {
		return true // unbounded SSD tier
	}
	occ := tier.backend().Stats().StoredBytes + pending
	if occ+stored > cap {
		return false
	}
	if !refault && t != len(c.tiers)-1 {
		high := int64(float64(cap) * tier.spec.HighWater)
		return occ <= high
	}
	return true
}

// place picks the destination tier for one page: the fastest tier at or
// below from that admits the content and has headroom. A second pass
// ignores admission thresholds so an incompressible page still lands in a
// compressed-only chain rather than failing. Returns -1 when no tier fits.
// countSkips suppresses the admission-skip counters for advisory lookups.
func (c *TierChain) place(from int, pageBytes int64, ratio float64, pending []int64, refault, countSkips bool) int {
	for t := from; t < len(c.tiers); t++ {
		if !c.admissible(t, ratio) {
			if countSkips {
				c.admitSkips++
				if c.telAdmitSkips != nil {
					c.telAdmitSkips.Inc()
				}
			}
			continue
		}
		var pend int64
		if pending != nil {
			pend = pending[t]
		}
		if c.fits(t, c.storedSize(t, pageBytes, ratio), pend, refault) {
			return t
		}
	}
	for t := from; t < len(c.tiers); t++ {
		if c.admissible(t, ratio) {
			continue // already tried above
		}
		var pend int64
		if pending != nil {
			pend = pending[t]
		}
		if c.fits(t, c.storedSize(t, pageBytes, ratio), pend, refault) {
			return t
		}
	}
	return -1
}

// placeFresh is place() for a new store, counting a promotion when the
// refault bias moved the page above where a cold store would have landed.
func (c *TierChain) placeFresh(pageBytes int64, ratio float64, pending []int64, refault bool) int {
	t := c.place(0, pageBytes, ratio, pending, refault, true)
	if refault && t >= 0 {
		if cold := c.place(0, pageBytes, ratio, pending, false, false); cold < 0 || t < cold {
			c.promotions++
			if c.telPromotions != nil {
				c.telPromotions.Inc()
			}
			if tier := &c.tiers[t]; tier.telRefaults != nil {
				tier.telRefaults.Inc()
			}
		}
	}
	return t
}

// register records a stored page under a fresh (or pre-allocated) outer
// handle and keeps the tier's inverse map in sync.
func (c *TierChain) register(outer Handle, t int, inner Handle, logical int64, ratio float64) {
	c.entries[outer] = chainEntry{tier: t, inner: inner, logical: logical, ratio: ratio}
	if tier := &c.tiers[t]; tier.zs != nil {
		tier.inverse[inner] = outer
	}
	if tier := &c.tiers[t]; tier.telStores != nil {
		tier.telStores.Inc()
	}
}

// Store implements SwapBackend, a one-page batch (scratch-backed so the
// single-page reclaim path stays allocation-free).
func (c *TierChain) Store(now vclock.Time, pageBytes int64, compressRatio float64) (StoreResult, error) {
	c.oneReq[0] = StoreReq{PageBytes: pageBytes, CompressRatio: compressRatio}
	if _, err := c.StoreBatch(now, c.oneReq[:], c.oneOut[:]); err != nil {
		return StoreResult{}, err
	}
	return c.oneOut[0], nil
}

// StoreBatch implements SwapBackend. One pass assigns every page its
// destination tier using exact occupancy projections (the same formulas the
// tiers' own admission checks use), then each tier's share goes out as one
// sub-batch in tier order so per-submission costs amortise per tier. A
// batch stores a prefix: the first page with no destination anywhere in the
// chain defines n and ErrFull is returned.
func (c *TierChain) StoreBatch(now vclock.Time, reqs []StoreReq, out []StoreResult) (int, error) {
	for t := range c.tiers {
		c.storeReqs[t] = c.storeReqs[t][:0]
		c.storeIdx[t] = c.storeIdx[t][:0]
		c.storePending[t] = 0
	}
	c.storeOuters = c.storeOuters[:0]

	n := len(reqs)
	for i, req := range reqs {
		t := c.placeFresh(req.PageBytes, req.CompressRatio, c.storePending, req.Refault)
		if t < 0 {
			n = i
			break
		}
		c.storePending[t] += c.storedSize(t, req.PageBytes, req.CompressRatio)
		c.storeReqs[t] = append(c.storeReqs[t], req)
		c.storeIdx[t] = append(c.storeIdx[t], i)
		outer := c.next
		c.next++
		c.storeOuters = append(c.storeOuters, outer)
	}

	for t := range c.tiers {
		sub := c.storeReqs[t]
		if len(sub) == 0 {
			continue
		}
		if cap(c.storeOut[t]) < len(sub) {
			c.storeOut[t] = make([]StoreResult, len(sub))
		}
		subOut := c.storeOut[t][:len(sub)]
		m, err := c.tiers[t].backend().StoreBatch(now, sub, subOut)
		if err != nil || m != len(sub) {
			// The projection uses the tiers' exact admission formulas, so a
			// mismatch means the bookkeeping is out of sync.
			panic(fmt.Sprintf("backend: chain tier %d rejected %d/%d projected stores: %v",
				t, len(sub)-m, len(sub), err))
		}
		for j, origIdx := range c.storeIdx[t] {
			res := subOut[j]
			inner := res.Handle
			outer := c.storeOuters[origIdx]
			c.register(outer, t, inner, sub[j].PageBytes, sub[j].CompressRatio)
			res.Handle = outer
			out[origIdx] = res
		}
	}

	if n < len(reqs) {
		return n, ErrFull
	}
	return n, nil
}

// Load implements SwapBackend.
func (c *TierChain) Load(now vclock.Time, h Handle) LoadResult {
	e, ok := c.entries[h]
	if !ok {
		panic(fmt.Sprintf("backend: load of unknown chain handle %d", h))
	}
	delete(c.entries, h)
	tier := &c.tiers[e.tier]
	if tier.zs != nil {
		delete(tier.inverse, e.inner)
		return tier.zs.Load(now, e.inner)
	}
	return tier.ssd.Load(now, e.inner)
}

// LoadBatch implements SwapBackend: the cluster is partitioned by tier and
// each tier serves its share as one submission; the latencies sum — fast
// tiers decompress while the SSD seeks once for all its pages.
func (c *TierChain) LoadBatch(now vclock.Time, hs []Handle) BatchLoadResult {
	for t := range c.tiers {
		c.loadScratch[t] = c.loadScratch[t][:0]
	}
	for _, h := range hs {
		e, ok := c.entries[h]
		if !ok {
			panic(fmt.Sprintf("backend: load of unknown chain handle %d", h))
		}
		delete(c.entries, h)
		tier := &c.tiers[e.tier]
		if tier.zs != nil {
			delete(tier.inverse, e.inner)
		}
		c.loadScratch[e.tier] = append(c.loadScratch[e.tier], e.inner)
	}
	var res BatchLoadResult
	for t := range c.tiers {
		part := c.loadScratch[t]
		if len(part) == 0 {
			continue
		}
		r := c.tiers[t].backend().LoadBatch(now, part)
		res.Latency += r.Latency
		res.BlockIO = res.BlockIO || r.BlockIO
	}
	return res
}

// DrainWriteback implements SwapBackend: the SSD tier issues queued
// swap-out writes due by now, then the chain manager runs one watermark
// pass, demoting LRU entries out of any tier above its HighWater mark.
func (c *TierChain) DrainWriteback(now vclock.Time) {
	if s := c.SSD(); s != nil {
		s.DrainWriteback(now)
	}
	c.manage(now)
}

// manage is the chain manager's demotion pass. Tiers are visited fastest
// first so a demotion that pushes the next tier over ITS watermark cascades
// within the same pass. Victims move in LRU order (matching zswap's
// writeback order) in batches, re-running admission at each lower tier so
// incompressible entries keep falling until a tier takes them. Demotion
// into the SSD tier lands on the async writeback queue; a backpressure
// stall there ends the round — the device is already behind, pushing more
// migration traffic at it would only grow the stall reclaim sees.
func (c *TierChain) manage(now vclock.Time) {
	for t := 0; t < len(c.tiers); t++ {
		tier := &c.tiers[t]
		if tier.zs == nil {
			continue // the SSD tier has nowhere further to demote
		}
		cap := tier.spec.CapacityBytes
		high := int64(float64(cap) * tier.spec.HighWater)
		if tier.zs.Stats().StoredBytes <= high {
			continue
		}
		target := int64(float64(cap) * tier.spec.LowWater)
		for tier.zs.Stats().StoredBytes > target {
			moved, backpressure := c.demoteBatch(now, t)
			if backpressure {
				c.demoteStall++
				if c.telDemoteStall != nil {
					c.telDemoteStall.Inc()
				}
				return // queue full: resume next tick
			}
			if moved == 0 {
				break // nothing evictable or down-chain full
			}
		}
	}
}

// demoteBatch migrates up to demoteBatchPages LRU victims out of tier t,
// grouping the SSD-bound share into one writeback-queue submission (the PR 8
// batched swap-out path). Returns how many pages moved and whether the SSD
// queue pushed back.
func (c *TierChain) demoteBatch(now vclock.Time, t int) (moved int, backpressure bool) {
	tier := &c.tiers[t]
	target := int64(float64(tier.spec.CapacityBytes) * tier.spec.LowWater)
	c.demoteOuters = c.demoteOuters[:0]
	c.demoteReqs = c.demoteReqs[:0]
	// SSD-bound victims defer their store to one batched submission below,
	// so their bytes must be projected onto the tier until it lands.
	for i := range c.storePending {
		c.storePending[i] = 0
	}

	for len(c.demoteOuters) < demoteBatchPages && tier.zs.Stats().StoredBytes > target {
		inner, ok := tier.zs.OldestHandle()
		if !ok {
			break
		}
		outer, ok := tier.inverse[inner]
		if !ok {
			panic("backend: chain inverse map out of sync")
		}
		e := c.entries[outer]
		dst := c.place(t+1, e.logical, e.ratio, c.storePending, false, true)
		if dst < 0 {
			break // every lower tier is full; stop demoting
		}
		logical, _, ok := tier.zs.Writeback(inner)
		if !ok {
			panic("backend: chain writeback of vanished entry")
		}
		delete(tier.inverse, inner)

		if c.tiers[dst].ssd != nil {
			// SSD-bound victims batch into one submission below. Swap
			// stores pages uncompressed, so the ratio is irrelevant there.
			c.storePending[dst] += logical
			c.demoteOuters = append(c.demoteOuters, outer)
			c.demoteReqs = append(c.demoteReqs, StoreReq{PageBytes: logical, CompressRatio: e.ratio})
			continue
		}
		res, err := c.tiers[dst].zs.Store(now, logical, e.ratio)
		if err != nil {
			panic("backend: chain demotion target rejected a projected store: " + err.Error())
		}
		c.register(outer, dst, res.Handle, logical, e.ratio)
		c.noteDemotion(now, tier, t, dst, logical)
		moved++
	}

	if len(c.demoteReqs) > 0 {
		ssdTier := len(c.tiers) - 1
		if cap(c.demoteOut) < len(c.demoteReqs) {
			c.demoteOut = make([]StoreResult, len(c.demoteReqs))
		}
		subOut := c.demoteOut[:len(c.demoteReqs)]
		m, err := c.tiers[ssdTier].ssd.StoreBatch(now, c.demoteReqs, subOut)
		if err != nil || m != len(c.demoteReqs) {
			panic(fmt.Sprintf("backend: chain SSD tier rejected %d/%d projected demotions: %v",
				len(c.demoteReqs)-m, len(c.demoteReqs), err))
		}
		for j, outer := range c.demoteOuters {
			c.register(outer, ssdTier, subOut[j].Handle, c.demoteReqs[j].PageBytes, c.demoteReqs[j].CompressRatio)
			c.noteDemotion(now, tier, t, ssdTier, c.demoteReqs[j].PageBytes)
			moved++
		}
		// A nonzero latency on the first page is the writeback queue's
		// backpressure stall: the queue was full when the submission pushed.
		backpressure = subOut[0].Latency > 0
	}
	return moved, backpressure
}

// noteDemotion updates counters and the decision log for one migrated page.
func (c *TierChain) noteDemotion(now vclock.Time, src *chainTier, from, to int, logical int64) {
	c.demotions++
	if src.telDemotions != nil {
		src.telDemotions.Inc()
	}
	if c.trace != nil {
		c.trace.Emit(now, trace.KindBackendWriteback, src.spec.Label(),
			"demoted %d B LRU entry tier %d -> %d (%s)", logical, from, to, c.tiers[to].spec.Label())
	}
}

// Free implements SwapBackend.
func (c *TierChain) Free(h Handle) {
	e, ok := c.entries[h]
	if !ok {
		return
	}
	delete(c.entries, h)
	tier := &c.tiers[e.tier]
	if tier.zs != nil {
		delete(tier.inverse, e.inner)
		tier.zs.Free(e.inner)
	} else {
		tier.ssd.Free(e.inner)
	}
}

// Stats implements SwapBackend, merging every tier.
func (c *TierChain) Stats() Stats {
	var sum Stats
	for i := range c.tiers {
		s := c.tiers[i].backend().Stats()
		sum.StoredPages += s.StoredPages
		sum.LogicalBytes += s.LogicalBytes
		sum.StoredBytes += s.StoredBytes
		sum.TotalWrites += s.TotalWrites
		sum.TotalReads += s.TotalReads
		sum.WrittenBytes += s.WrittenBytes
	}
	return sum
}

// WriteRate implements SwapBackend: only the SSD tier wears.
func (c *TierChain) WriteRate(now vclock.Time) float64 {
	if s := c.SSD(); s != nil {
		return s.WriteRate(now)
	}
	return 0
}

// PoolBytes implements SwapBackend: the compressed tiers' DRAM footprint.
func (c *TierChain) PoolBytes() int64 {
	var sum int64
	for i := range c.tiers {
		if c.tiers[i].zs != nil {
			sum += c.tiers[i].zs.PoolBytes()
		}
	}
	return sum
}
