package backend

import (
	"fmt"
	"math/rand/v2"

	"tmo/internal/dist"
	"tmo/internal/metrics"
	"tmo/internal/telemetry"
	"tmo/internal/vclock"
)

// DeviceSpec describes one SSD model in the fleet. The catalog below
// parameterises the seven device generations of the paper's Fig. 5.
type DeviceSpec struct {
	// Model is the device's catalog letter, "A" (oldest) through "G".
	Model string
	// EndurancePTBW is the rated write endurance in petabytes written.
	EndurancePTBW float64
	// ReadIOPS and WriteIOPS are the device's sustained operation ceilings.
	ReadIOPS, WriteIOPS float64
	// ReadBWBytesPerSec and WriteBWBytesPerSec are the device's sequential
	// transfer bandwidths; a batched (clustered) submission pays its fixed
	// per-op cost once plus bytes/bandwidth. Zero disables the transfer
	// term (ad-hoc test specs behave as infinitely fast at moving bytes).
	ReadBWBytesPerSec, WriteBWBytesPerSec float64
	// ReadMedian/ReadP99 parameterise the read-latency distribution.
	ReadMedian, ReadP99 vclock.Duration
	// WriteMedian/WriteP99 parameterise the write-latency distribution.
	WriteMedian, WriteP99 vclock.Duration
}

// DeviceCatalog lists the fleet's SSD generations, A (oldest, slowest) to G
// (newest). The shape follows Fig. 5: endurance improves steadily across
// generations, IOPS are comparatively stable, and p99 read latency spans
// 9.3ms down to 470us. Device B is the "slow SSD" and device C the "fast
// SSD" of the Fig. 12 experiment.
var DeviceCatalog = []DeviceSpec{
	{Model: "A", EndurancePTBW: 1.0, ReadIOPS: 60e3, WriteIOPS: 15e3,
		ReadBWBytesPerSec: 450e6, WriteBWBytesPerSec: 350e6,
		ReadMedian: 1800 * vclock.Microsecond, ReadP99: 9300 * vclock.Microsecond,
		WriteMedian: 2500 * vclock.Microsecond, WriteP99: 12 * vclock.Millisecond},
	{Model: "B", EndurancePTBW: 1.8, ReadIOPS: 90e3, WriteIOPS: 25e3,
		ReadBWBytesPerSec: 800e6, WriteBWBytesPerSec: 600e6,
		ReadMedian: 1100 * vclock.Microsecond, ReadP99: 5200 * vclock.Microsecond,
		WriteMedian: 1600 * vclock.Microsecond, WriteP99: 8 * vclock.Millisecond},
	{Model: "C", EndurancePTBW: 3.5, ReadIOPS: 180e3, WriteIOPS: 55e3,
		ReadBWBytesPerSec: 1.8e9, WriteBWBytesPerSec: 1.2e9,
		ReadMedian: 160 * vclock.Microsecond, ReadP99: 640 * vclock.Microsecond,
		WriteMedian: 420 * vclock.Microsecond, WriteP99: 2100 * vclock.Microsecond},
	{Model: "D", EndurancePTBW: 4.5, ReadIOPS: 260e3, WriteIOPS: 70e3,
		ReadBWBytesPerSec: 2.2e9, WriteBWBytesPerSec: 1.5e9,
		ReadMedian: 145 * vclock.Microsecond, ReadP99: 590 * vclock.Microsecond,
		WriteMedian: 380 * vclock.Microsecond, WriteP99: 1800 * vclock.Microsecond},
	{Model: "E", EndurancePTBW: 6.0, ReadIOPS: 350e3, WriteIOPS: 90e3,
		ReadBWBytesPerSec: 2.8e9, WriteBWBytesPerSec: 1.9e9,
		ReadMedian: 135 * vclock.Microsecond, ReadP99: 540 * vclock.Microsecond,
		WriteMedian: 340 * vclock.Microsecond, WriteP99: 1400 * vclock.Microsecond},
	{Model: "F", EndurancePTBW: 8.0, ReadIOPS: 450e3, WriteIOPS: 110e3,
		ReadBWBytesPerSec: 3.2e9, WriteBWBytesPerSec: 2.2e9,
		ReadMedian: 125 * vclock.Microsecond, ReadP99: 500 * vclock.Microsecond,
		WriteMedian: 300 * vclock.Microsecond, WriteP99: 1100 * vclock.Microsecond},
	{Model: "G", EndurancePTBW: 10.0, ReadIOPS: 550e3, WriteIOPS: 140e3,
		ReadBWBytesPerSec: 3.5e9, WriteBWBytesPerSec: 2.8e9,
		ReadMedian: 118 * vclock.Microsecond, ReadP99: 470 * vclock.Microsecond,
		WriteMedian: 280 * vclock.Microsecond, WriteP99: 900 * vclock.Microsecond},
}

// DeviceByModel returns the catalog spec with the given letter.
func DeviceByModel(model string) (DeviceSpec, error) {
	for _, d := range DeviceCatalog {
		if d.Model == model {
			return d, nil
		}
	}
	return DeviceSpec{}, fmt.Errorf("backend: unknown SSD model %q", model)
}

// SSDDevice simulates one physical NVMe SSD. It is shared by everything on
// the host that performs block IO: the swap partition and the filesystem
// both issue reads and writes against the same device, so file refaults and
// swap-ins contend for the same IOPS — the coupling that makes the paper's
// Fig. 13 IO-pressure analysis possible.
//
// Latency model: per-IO service time is drawn from a log-normal fitted to
// the spec's median/p99, then inflated by a queueing factor 1/(1-rho) as the
// recent IOPS approach the device ceiling. Writes consume endurance, which
// Senpai's write-regulation mechanism monitors.
type SSDDevice struct {
	Spec DeviceSpec

	rng        *rand.Rand
	readLat    dist.Sampler
	writeLat   dist.Sampler
	readMeter  *metrics.RateMeter
	writeMeter *metrics.RateMeter // IOPS
	byteMeter  *metrics.RateMeter // written bytes/s

	reads, writes int64
	writtenBytes  int64

	// degradation multiplies all service times; experiments use it to
	// inject device health incidents (firmware pauses, thermal
	// throttling) and verify the controllers adapt.
	degradation float64

	// stallUntil makes the device unresponsive until that instant: any IO
	// issued before it waits out the remainder of the stall on top of its
	// service time, modeling firmware garbage-collection pauses.
	stallUntil vclock.Time

	readObserver func(vclock.Duration)

	// Registry instruments, nil until EnableTelemetry.
	telReads, telWrites, telWrittenBytes *telemetry.Counter
	telReadLat, telWriteLat              *telemetry.Histogram
	telBatchPages                        *telemetry.Histogram
}

// SetDegradation scales the device's service times by factor (>= 1) from
// now on; 1 restores nominal behaviour.
func (d *SSDDevice) SetDegradation(factor float64) {
	if factor < 1 {
		factor = 1
	}
	d.degradation = factor
}

// InjectWear charges n bytes against the device's endurance budget without
// performing IO — the chaos engine's stand-in for a device that arrives
// mid-life or is shared with a write-heavy neighbour. Wear is irreversible.
func (d *SSDDevice) InjectWear(n int64) {
	if n > 0 {
		d.writtenBytes += n
	}
}

// InjectStall freezes the device until now+dur: IO issued inside the window
// waits out its remainder. A later call may extend but never shorten an
// active stall.
func (d *SSDDevice) InjectStall(now vclock.Time, dur vclock.Duration) {
	if until := now.Add(dur); until > d.stallUntil {
		d.stallUntil = until
	}
}

// wearFactor converts endurance overuse into a latency multiplier. Within
// the rated budget the device behaves nominally; past it, program/erase
// retries and shrinking spare area slow every IO, up to ~12x for a device
// driven far beyond its pTBW rating.
func (d *SSDDevice) wearFactor() float64 {
	over := d.EnduranceUsed() - 1
	if over <= 0 {
		return 1
	}
	f := 1 + 6*over
	if f > 12 {
		f = 12
	}
	return f
}

// stallRemainder returns how much of an injected stall window an IO issued
// at now must wait out.
func (d *SSDDevice) stallRemainder(now vclock.Time) vclock.Duration {
	if now < d.stallUntil {
		return d.stallUntil.Sub(now)
	}
	return 0
}

// ObserveReads registers a callback invoked with every read's latency;
// experiment harnesses use it to build latency-percentile panels (Fig. 12a).
func (d *SSDDevice) ObserveReads(fn func(vclock.Duration)) { d.readObserver = fn }

// maxUtilization caps the queueing factor so a saturated device degrades
// latency by at most 10x instead of diverging.
const maxUtilization = 0.90

// NewSSDDevice returns a device following spec, with its own deterministic
// random stream derived from seed.
func NewSSDDevice(spec DeviceSpec, seed uint64) *SSDDevice {
	return &SSDDevice{
		Spec:       spec,
		rng:        dist.NewRand(seed),
		readLat:    dist.FitLogNormal(spec.ReadMedian, spec.ReadP99),
		writeLat:   dist.FitLogNormal(spec.WriteMedian, spec.WriteP99),
		readMeter:  metrics.NewRateMeter(100*vclock.Millisecond, 10),
		writeMeter: metrics.NewRateMeter(100*vclock.Millisecond, 10),
		byteMeter:  metrics.NewRateMeter(vclock.Second, 10),
	}
}

// queueFactor converts recent utilisation of an IOPS ceiling into a latency
// multiplier.
func queueFactor(rate, capacity float64) float64 {
	if capacity <= 0 {
		return 1
	}
	rho := rate / capacity
	if rho > maxUtilization {
		rho = maxUtilization
	}
	return 1 / (1 - rho)
}

// transferTime converts a payload size into its sequential-transfer cost at
// the given bandwidth; zero bandwidth disables the term.
func transferTime(bytes int64, bw float64) vclock.Duration {
	if bw <= 0 || bytes <= 0 {
		return 0
	}
	return vclock.Duration(float64(bytes) / bw * float64(vclock.Second))
}

// Read performs one 4KiB-class read and returns its latency.
func (d *SSDDevice) Read(now vclock.Time) vclock.Duration {
	return d.ReadBatch(now, 1, 4096)
}

// ReadBatch performs one clustered read submission covering pages pages and
// bytes payload bytes, and returns its completion latency. A batch is ONE
// device operation on the IOPS meter — the device sees a single larger
// sequential read, not pages random 4KiB ones — so it pays the sampled
// service latency (seek + queueing + degradation + wear) once, plus a
// bytes/bandwidth transfer term, plus any injected-stall remainder once.
func (d *SSDDevice) ReadBatch(now vclock.Time, pages int, bytes int64) vclock.Duration {
	d.reads += int64(pages)
	d.readMeter.Add(now, 1)
	f := queueFactor(d.readMeter.Rate(now), d.Spec.ReadIOPS)
	if d.degradation > 1 {
		f *= d.degradation
	}
	f *= d.wearFactor()
	lat := vclock.Duration(float64(d.readLat.Sample(d.rng))*f) +
		transferTime(bytes, d.Spec.ReadBWBytesPerSec) +
		d.stallRemainder(now)
	if d.readObserver != nil {
		d.readObserver(lat)
	}
	if d.telReads != nil {
		d.telReads.Add(int64(pages))
		d.telReadLat.Record(float64(lat))
	}
	if d.telBatchPages != nil {
		d.telBatchPages.Record(float64(pages))
	}
	return lat
}

// Write performs one write of n bytes and returns its (asynchronous)
// device-side latency. Callers on the reclaim path ignore the latency —
// swap-out is writeback — but the bytes count against endurance.
func (d *SSDDevice) Write(now vclock.Time, n int64) vclock.Duration {
	return d.WriteBatch(now, 1, n)
}

// WriteBatch performs one clustered write submission of pages pages and
// bytes payload bytes and returns its device-side latency: one operation on
// the write-IOPS meter, one sampled service latency scaled by
// queueing/degradation/wear, plus a bytes/bandwidth transfer term so a
// 16-page writeback costs more than a single 4KiB page, plus any
// injected-stall remainder paid once for the whole batch.
func (d *SSDDevice) WriteBatch(now vclock.Time, pages int, bytes int64) vclock.Duration {
	d.writes += int64(pages)
	d.writtenBytes += bytes
	d.writeMeter.Add(now, 1)
	d.byteMeter.Add(now, float64(bytes))
	f := queueFactor(d.writeMeter.Rate(now), d.Spec.WriteIOPS)
	if d.degradation > 1 {
		f *= d.degradation
	}
	f *= d.wearFactor()
	lat := vclock.Duration(float64(d.writeLat.Sample(d.rng))*f) +
		transferTime(bytes, d.Spec.WriteBWBytesPerSec) +
		d.stallRemainder(now)
	if d.telWrites != nil {
		d.telWrites.Add(int64(pages))
		d.telWrittenBytes.Add(bytes)
		d.telWriteLat.Record(float64(lat))
	}
	if d.telBatchPages != nil {
		d.telBatchPages.Record(float64(pages))
	}
	return lat
}

// Reads returns the cumulative read count.
func (d *SSDDevice) Reads() int64 { return d.reads }

// Writes returns the cumulative write count.
func (d *SSDDevice) Writes() int64 { return d.writes }

// WrittenBytes returns cumulative bytes written, the endurance-relevant
// figure.
func (d *SSDDevice) WrittenBytes() int64 { return d.writtenBytes }

// WriteByteRate returns the recent write rate in bytes/second.
func (d *SSDDevice) WriteByteRate(now vclock.Time) float64 { return d.byteMeter.Rate(now) }

// ReadRate returns the recent read IOPS.
func (d *SSDDevice) ReadRate(now vclock.Time) float64 { return d.readMeter.Rate(now) }

// EnduranceUsed returns the fraction of the device's rated lifetime writes
// already consumed.
func (d *SSDDevice) EnduranceUsed() float64 {
	ratedBytes := d.Spec.EndurancePTBW * 1e15
	if ratedBytes <= 0 {
		return 0
	}
	return float64(d.writtenBytes) / ratedBytes
}

// SSDSwap is a swap partition on an SSDDevice. Swap-out writes go through a
// depth-limited asynchronous writeback queue (see writeback.go): Store
// enqueues and returns immediately unless the queue is full, in which case
// the returned Latency carries the backpressure stall the reclaimer must
// serve.
type SSDSwap struct {
	dev *SSDDevice
	// capacity is the swap partition size in bytes; 0 means unlimited.
	capacity int64

	pageBytes map[Handle]int64
	next      Handle
	stats     Stats
	wb        *writebackQueue
}

// NewSSDSwap returns a swap backend over dev with the given partition size
// in bytes (0 = unbounded) and the default async writeback queue.
func NewSSDSwap(dev *SSDDevice, capacity int64) *SSDSwap {
	return &SSDSwap{
		dev:       dev,
		capacity:  capacity,
		pageBytes: make(map[Handle]int64),
		wb:        newWritebackQueue(dev, WritebackConfig{}),
	}
}

// ConfigureWriteback replaces the writeback queue's limits. Pending
// submissions from the old configuration are issued inline first so no
// queued write is lost.
func (s *SSDSwap) ConfigureWriteback(cfg WritebackConfig) {
	for i := 0; i < s.wb.n; i++ {
		e := s.wb.ring[(s.wb.head+i)%len(s.wb.ring)]
		s.dev.WriteBatch(e.ready, e.pages, e.bytes)
	}
	nq := newWritebackQueue(s.dev, cfg)
	nq.telDrained, nq.telStalls, nq.telStallUs = s.wb.telDrained, s.wb.telStalls, s.wb.telStallUs
	s.wb = nq
}

// Device exposes the underlying SSD (shared with the filesystem).
func (s *SSDSwap) Device() *SSDDevice { return s.dev }

// Capacity returns the partition size in bytes (0 = unbounded).
func (s *SSDSwap) Capacity() int64 { return s.capacity }

// QueueDepth returns the current async writeback queue depth.
func (s *SSDSwap) QueueDepth() int { return s.wb.depth() }

// Name implements SwapBackend.
func (s *SSDSwap) Name() string { return "swap-ssd-" + s.dev.Spec.Model }

// Kind implements SwapBackend.
func (s *SSDSwap) Kind() Kind { return KindSSD }

// admit reserves space for one page, recording it under a fresh handle.
func (s *SSDSwap) admit(pageBytes int64) (Handle, bool) {
	if s.capacity > 0 && s.stats.StoredBytes+pageBytes > s.capacity {
		return 0, false
	}
	h := s.next
	s.next++
	s.pageBytes[h] = pageBytes
	s.stats.StoredPages++
	s.stats.LogicalBytes += pageBytes
	s.stats.StoredBytes += pageBytes
	s.stats.TotalWrites++
	s.stats.WrittenBytes += pageBytes
	return h, true
}

// submitWriteback hands a store submission to the async queue (or writes
// inline when the queue is disabled) and returns the reclaimer-visible
// stall.
func (s *SSDSwap) submitWriteback(now vclock.Time, pages int, bytes int64) vclock.Duration {
	if s.wb.cfg.Disabled {
		s.dev.WriteBatch(now, pages, bytes)
		return 0
	}
	return s.wb.push(now, pages, bytes)
}

// Store implements SwapBackend. Pages are written uncompressed; compression
// ratio is ignored on the SSD path. The returned Latency is the writeback
// queue's backpressure stall — zero while the queue has room.
func (s *SSDSwap) Store(now vclock.Time, pageBytes int64, _ float64) (StoreResult, error) {
	h, ok := s.admit(pageBytes)
	if !ok {
		return StoreResult{}, ErrFull
	}
	stall := s.submitWriteback(now, 1, pageBytes)
	return StoreResult{Handle: h, StoredBytes: pageBytes, DeviceWrite: pageBytes, Latency: stall}, nil
}

// StoreBatch implements SwapBackend: the whole batch is one writeback-queue
// submission (one device write op when it drains). Capacity is checked per
// page, so on ErrFull the stored prefix still goes out as a single
// submission. The backpressure stall, if any, is charged to the batch's
// first page.
func (s *SSDSwap) StoreBatch(now vclock.Time, reqs []StoreReq, out []StoreResult) (int, error) {
	n := 0
	var bytes int64
	for _, req := range reqs {
		h, ok := s.admit(req.PageBytes)
		if !ok {
			break
		}
		out[n] = StoreResult{Handle: h, StoredBytes: req.PageBytes, DeviceWrite: req.PageBytes}
		bytes += req.PageBytes
		n++
	}
	if n > 0 {
		out[0].Latency = s.submitWriteback(now, n, bytes)
	}
	if n < len(reqs) {
		return n, ErrFull
	}
	return n, nil
}

// Load implements SwapBackend.
func (s *SSDSwap) Load(now vclock.Time, h Handle) LoadResult {
	s.wb.drain(now)
	n, ok := s.pageBytes[h]
	if !ok {
		panic(fmt.Sprintf("backend: load of unknown swap handle %d", h))
	}
	lat := s.dev.ReadBatch(now, 1, n)
	s.release(h, n)
	s.stats.TotalReads++
	return LoadResult{Latency: lat, BlockIO: true}
}

// LoadBatch implements SwapBackend: the whole cluster is one device read
// submission, paying the sampled service latency, queue factor, and any
// injected-stall remainder once, plus the byte-rate transfer term for the
// full payload.
func (s *SSDSwap) LoadBatch(now vclock.Time, hs []Handle) BatchLoadResult {
	s.wb.drain(now)
	var bytes int64
	for _, h := range hs {
		n, ok := s.pageBytes[h]
		if !ok {
			panic(fmt.Sprintf("backend: load of unknown swap handle %d", h))
		}
		bytes += n
		s.release(h, n)
	}
	s.stats.TotalReads += int64(len(hs))
	lat := s.dev.ReadBatch(now, len(hs), bytes)
	return BatchLoadResult{Latency: lat, BlockIO: true}
}

// DrainWriteback implements SwapBackend: issue queued swap-out writes due by
// now.
func (s *SSDSwap) DrainWriteback(now vclock.Time) {
	s.wb.drain(now)
}

// Free implements SwapBackend.
func (s *SSDSwap) Free(h Handle) {
	if n, ok := s.pageBytes[h]; ok {
		s.release(h, n)
	}
}

func (s *SSDSwap) release(h Handle, n int64) {
	delete(s.pageBytes, h)
	s.stats.StoredPages--
	s.stats.LogicalBytes -= n
	s.stats.StoredBytes -= n
}

// Stats implements SwapBackend.
func (s *SSDSwap) Stats() Stats { return s.stats }

// WriteRate implements SwapBackend.
func (s *SSDSwap) WriteRate(now vclock.Time) float64 { return s.dev.WriteByteRate(now) }

// PoolBytes implements SwapBackend; SSD swap consumes no host DRAM.
func (s *SSDSwap) PoolBytes() int64 { return 0 }

// Filesystem is the file-backed storage path on the host SSD. Evicted file
// cache is reloaded through it, and first-touch file reads (cache fills) go
// through it as well.
type Filesystem struct {
	dev    *SSDDevice
	reads  int64
	writes int64
}

// NewFilesystem returns a filesystem sharing dev with swap.
func NewFilesystem(dev *SSDDevice) *Filesystem { return &Filesystem{dev: dev} }

// Device exposes the underlying SSD.
func (f *Filesystem) Device() *SSDDevice { return f.dev }

// ReadPage reads one file page from storage, returning the IO latency.
func (f *Filesystem) ReadPage(now vclock.Time) vclock.Duration {
	f.reads++
	return f.dev.Read(now)
}

// WritePage writes one dirty file page back to storage (flusher-thread
// writeback), returning the device-side latency. The bytes count against
// the device's endurance like any other write.
func (f *Filesystem) WritePage(now vclock.Time) vclock.Duration {
	f.writes++
	return f.dev.Write(now, 4096)
}

// Writes returns cumulative file writeback count.
func (f *Filesystem) Writes() int64 { return f.writes }

// Reads returns cumulative file read count (the paper's "SSD read rate"
// panel in Fig. 13 reports the rate of these).
func (f *Filesystem) Reads() int64 { return f.reads }
