package backend

import (
	"testing"

	"tmo/internal/vclock"
)

// flatSpec is a deterministic ad-hoc device: no IOPS ceilings (queue factor
// 1) so latency differences isolate the term under test.
var flatSpec = DeviceSpec{
	Model:      "t",
	ReadMedian: 100 * vclock.Microsecond, ReadP99: 400 * vclock.Microsecond,
	WriteMedian: 100 * vclock.Microsecond, WriteP99: 400 * vclock.Microsecond,
}

// TestWriteBatchBandwidthTerm pins the write latency model's bytes/bandwidth
// term across batch sizes: two devices sharing a seed (hence the same
// sampled service latency) must differ by exactly bytes/BW. Before the fix,
// Write ignored its byte count entirely — a 16-page batched writeback cost
// the same as one 4KiB page.
func TestWriteBatchBandwidthTerm(t *testing.T) {
	const bw = 1e9
	withBW := flatSpec
	withBW.WriteBWBytesPerSec = bw
	for _, pages := range []int{1, 4, 16, 64} {
		noTerm := NewSSDDevice(flatSpec, 42)
		term := NewSSDDevice(withBW, 42)
		bytes := int64(pages) * pageSize
		lat0 := noTerm.WriteBatch(0, pages, bytes)
		lat1 := term.WriteBatch(0, pages, bytes)
		want := vclock.Duration(float64(bytes) / bw * float64(vclock.Second))
		if got := lat1 - lat0; got != want {
			t.Errorf("%d pages: bandwidth term = %v, want %v", pages, got, want)
		}
	}
}

// TestWriteLatencyScalesWithBytes is the user-visible form of the same fix:
// on a catalog device (which has a finite write bandwidth), writing more
// bytes in one submission must cost more.
func TestWriteLatencyScalesWithBytes(t *testing.T) {
	spec, _ := DeviceByModel("C")
	small := NewSSDDevice(spec, 9)
	large := NewSSDDevice(spec, 9)
	latSmall := small.Write(0, pageSize)
	latLarge := large.Write(0, 64*pageSize)
	if latLarge <= latSmall {
		t.Fatalf("64-page write (%v) not costlier than 1-page write (%v)", latLarge, latSmall)
	}
	want := vclock.Duration(float64(63*pageSize) / spec.WriteBWBytesPerSec * float64(vclock.Second))
	if got := latLarge - latSmall; got != want {
		t.Fatalf("latency delta = %v, want transfer delta %v", got, want)
	}
}

// TestReadBatchChargesOneMeterOp: a clustered read is ONE operation against
// the device's IOPS meter, not one per page — the fix for readahead bursts
// inflating the queue factor seen by subsequent demand reads. Page-count
// accounting (Reads) stays identical.
func TestReadBatchChargesOneMeterOp(t *testing.T) {
	spec, _ := DeviceByModel("C")
	batched := NewSSDDevice(spec, 7)
	serial := NewSSDDevice(spec, 7)
	now := vclock.Time(0)
	for i := 0; i < 50; i++ {
		batched.ReadBatch(now, 8, 8*pageSize)
		for j := 0; j < 8; j++ {
			serial.Read(now)
		}
		now = now.Add(10 * vclock.Millisecond)
	}
	if batched.Reads() != serial.Reads() {
		t.Fatalf("page accounting diverged: batched %d, serial %d", batched.Reads(), serial.Reads())
	}
	rb, rs := batched.ReadRate(now), serial.ReadRate(now)
	if rb <= 0 || rs <= 0 {
		t.Fatalf("meters idle: batched %v serial %v", rb, rs)
	}
	// 8-page batches should register ~1/8th the ops of per-page reads.
	if rb*4 > rs {
		t.Fatalf("batched meter rate %.0f ops/s vs serial %.0f: batch must be one op on the meter", rb, rs)
	}
}

// TestBatchPaysInjectedStallOnce: N reads issued during a chaos stall window
// used to each pay the full remainder; a batched submission pays it once.
func TestBatchPaysInjectedStallOnce(t *testing.T) {
	spec, _ := DeviceByModel("C")
	const stall = 50 * vclock.Millisecond
	now := vclock.Time(vclock.Second)
	mk := func() (*SSDDevice, *SSDSwap, []Handle) {
		dev := NewSSDDevice(spec, 11)
		sw := NewSSDSwap(dev, 0)
		sw.ConfigureWriteback(WritebackConfig{Disabled: true})
		hs := make([]Handle, 8)
		for i := range hs {
			r, err := sw.Store(0, pageSize, 1)
			if err != nil {
				t.Fatal(err)
			}
			hs[i] = r.Handle
		}
		dev.InjectStall(now, stall)
		return dev, sw, hs
	}

	_, swB, hsB := mk()
	batched := swB.LoadBatch(now, hsB).Latency

	_, swS, hsS := mk()
	var serial vclock.Duration
	for _, h := range hsS {
		serial += swS.Load(now, h).Latency
	}

	if serial < 8*stall {
		t.Fatalf("per-page loads paid %v, expected each of 8 to wait out the %v remainder", serial, stall)
	}
	if batched >= 2*stall {
		t.Fatalf("batched load paid %v — the stall remainder must be charged once, not per page", batched)
	}
	if batched <= stall {
		t.Fatalf("batched load paid %v, must include the full %v remainder", batched, stall)
	}
}

// TestSSDLoadBatchAmortizesFixedCost: one clustered submission beats the
// same pages loaded one at a time, because seek/queue cost is paid once.
func TestSSDLoadBatchAmortizesFixedCost(t *testing.T) {
	spec, _ := DeviceByModel("C")
	mk := func() *SSDSwap {
		sw := NewSSDSwap(NewSSDDevice(spec, 21), 0)
		sw.ConfigureWriteback(WritebackConfig{Disabled: true})
		return sw
	}
	swB, swS := mk(), mk()
	var hsB, hsS []Handle
	for i := 0; i < 8; i++ {
		rb, _ := swB.Store(0, pageSize, 1)
		rs, _ := swS.Store(0, pageSize, 1)
		hsB, hsS = append(hsB, rb.Handle), append(hsS, rs.Handle)
	}
	now := vclock.Time(vclock.Second)
	batched := swB.LoadBatch(now, hsB)
	if !batched.BlockIO {
		t.Fatalf("SSD batch load must report block IO")
	}
	serial := SerialLoadBatch(swS, now, hsS)
	if batched.Latency >= serial.Latency {
		t.Fatalf("batched cluster load %v not cheaper than serial %v", batched.Latency, serial.Latency)
	}
	if st := swB.Stats(); st.StoredPages != 0 || st.TotalReads != 8 {
		t.Fatalf("batch load released wrong state: %+v", st)
	}
}

// TestZswapBatchAmortizesCodecOverhead: with twin pools on one seed, the
// batched load draws the same per-page samples but discounts the tail, so it
// is strictly cheaper than the serial sum; store batches likewise.
func TestZswapBatchAmortizesCodecOverhead(t *testing.T) {
	mk := func() *Zswap { return NewZswap(CodecZstd, AllocZsmalloc, 0, 5) }
	zb, zs := mk(), mk()
	var hsB, hsS []Handle
	for i := 0; i < 8; i++ {
		rb, _ := zb.Store(0, pageSize, 2)
		rs, _ := zs.Store(0, pageSize, 2)
		hsB, hsS = append(hsB, rb.Handle), append(hsS, rs.Handle)
	}
	batched := zb.LoadBatch(0, hsB)
	serial := SerialLoadBatch(zs, 0, hsS)
	if batched.BlockIO {
		t.Fatalf("zswap batch load must not report block IO")
	}
	if batched.Latency >= serial.Latency {
		t.Fatalf("batched zswap load %v not cheaper than serial %v", batched.Latency, serial.Latency)
	}

	zb2, zs2 := NewZswap(CodecZstd, AllocZsmalloc, 0, 6), NewZswap(CodecZstd, AllocZsmalloc, 0, 6)
	reqs := make([]StoreReq, 8)
	for i := range reqs {
		reqs[i] = StoreReq{PageBytes: pageSize, CompressRatio: 2}
	}
	out := make([]StoreResult, 8)
	n, err := zb2.StoreBatch(0, reqs, out)
	if n != 8 || err != nil {
		t.Fatalf("StoreBatch = %d, %v", n, err)
	}
	var batchedStore vclock.Duration
	for _, r := range out[:n] {
		batchedStore += r.Latency
	}
	var serialStore vclock.Duration
	for i := 0; i < 8; i++ {
		r, _ := zs2.Store(0, pageSize, 2)
		serialStore += r.Latency
	}
	if batchedStore >= serialStore {
		t.Fatalf("batched zswap store %v not cheaper than serial %v", batchedStore, serialStore)
	}
}

// TestStoreBatchStoresPrefixOnFull: a batch that exhausts capacity reports
// how many pages fit and stores exactly that prefix.
func TestStoreBatchStoresPrefixOnFull(t *testing.T) {
	spec, _ := DeviceByModel("C")
	sw := NewSSDSwap(NewSSDDevice(spec, 13), 5*pageSize)
	reqs := make([]StoreReq, 8)
	for i := range reqs {
		reqs[i] = StoreReq{PageBytes: pageSize, CompressRatio: 1}
	}
	out := make([]StoreResult, 8)
	n, err := sw.StoreBatch(0, reqs, out)
	if n != 5 || err != ErrFull {
		t.Fatalf("StoreBatch = %d, %v; want 5, ErrFull", n, err)
	}
	if st := sw.Stats(); st.StoredPages != 5 {
		t.Fatalf("stored pages = %d, want the 5-page prefix", st.StoredPages)
	}
	for i := 0; i < n; i++ {
		if out[i].StoredBytes != pageSize {
			t.Fatalf("result %d not filled: %+v", i, out[i])
		}
	}
}

// TestWritebackDeferredUntilDrain: stores enqueue; device writes land only
// as the queue drains on the virtual clock.
func TestWritebackDeferredUntilDrain(t *testing.T) {
	spec, _ := DeviceByModel("C")
	dev := NewSSDDevice(spec, 17)
	sw := NewSSDSwap(dev, 0)
	sw.ConfigureWriteback(WritebackConfig{MaxIOPS: 100}) // one submission per 10ms
	for i := 0; i < 4; i++ {
		r, err := sw.Store(0, pageSize, 1)
		if err != nil || r.Latency != 0 {
			t.Fatalf("store %d within depth: %v, stall %v", i, err, r.Latency)
		}
	}
	if dev.WrittenBytes() >= 4*pageSize {
		t.Fatalf("all writes landed at store time; queue is not deferring")
	}
	if sw.QueueDepth() == 0 {
		t.Fatalf("queue empty right after stores")
	}
	sw.DrainWriteback(vclock.Time(vclock.Second))
	if got := dev.WrittenBytes(); got != 4*pageSize {
		t.Fatalf("after drain, device saw %d bytes, want %d", got, 4*pageSize)
	}
	if sw.QueueDepth() != 0 {
		t.Fatalf("queue depth %d after full drain", sw.QueueDepth())
	}
}

// TestWritebackBackpressureStallsReclaimer: pushing past the queue depth
// returns a positive stall — the reclaim-side backpressure that feeds PSI.
func TestWritebackBackpressureStallsReclaimer(t *testing.T) {
	spec, _ := DeviceByModel("C")
	dev := NewSSDDevice(spec, 19)
	sw := NewSSDSwap(dev, 0)
	sw.ConfigureWriteback(WritebackConfig{Depth: 2, MaxIOPS: 10}) // 100ms per submission
	var stalled bool
	for i := 0; i < 6; i++ {
		r, err := sw.Store(0, pageSize, 1)
		if err != nil {
			t.Fatal(err)
		}
		if r.Latency > 0 {
			stalled = true
		}
	}
	if !stalled {
		t.Fatalf("six stores into a depth-2 queue at 10 IOPS never stalled")
	}
}

// TestWritebackStallBacksUpQueue: an injected device stall gates the drain
// schedule, so a frozen device converts into reclaim backpressure.
func TestWritebackStallBacksUpQueue(t *testing.T) {
	spec, _ := DeviceByModel("C")
	dev := NewSSDDevice(spec, 23)
	sw := NewSSDSwap(dev, 0)
	sw.ConfigureWriteback(WritebackConfig{Depth: 2, MaxIOPS: 1000})
	now := vclock.Time(vclock.Second)
	dev.InjectStall(now, 500*vclock.Millisecond)
	var stall vclock.Duration
	for i := 0; i < 4; i++ {
		r, err := sw.Store(now, pageSize, 1)
		if err != nil {
			t.Fatal(err)
		}
		stall += r.Latency
	}
	// At 1000 IOPS the queue would absorb 4 stores without breaking a
	// sweat; only the frozen device can explain a backpressure stall that
	// spans the stall window.
	if stall < 400*vclock.Millisecond {
		t.Fatalf("backpressure during a 500ms device stall totalled %v; queue is not gated on the stall", stall)
	}
}

// TestConfigureWritebackFlushesPending: reconfiguring the queue must not
// lose queued writes.
func TestConfigureWritebackFlushesPending(t *testing.T) {
	spec, _ := DeviceByModel("C")
	dev := NewSSDDevice(spec, 29)
	sw := NewSSDSwap(dev, 0)
	sw.ConfigureWriteback(WritebackConfig{MaxIOPS: 1}) // effectively frozen
	for i := 0; i < 3; i++ {
		if _, err := sw.Store(0, pageSize, 1); err != nil {
			t.Fatal(err)
		}
	}
	sw.ConfigureWriteback(WritebackConfig{})
	if got := dev.WrittenBytes(); got < 2*pageSize {
		t.Fatalf("reconfigure lost queued writes: device saw %d bytes", got)
	}
	if sw.QueueDepth() != 0 {
		t.Fatalf("stale entries in replaced queue")
	}
}

// TestWritebackDisabledWritesInline: Disabled reverts to the synchronous
// store-time cost model.
func TestWritebackDisabledWritesInline(t *testing.T) {
	spec, _ := DeviceByModel("C")
	dev := NewSSDDevice(spec, 31)
	sw := NewSSDSwap(dev, 0)
	sw.ConfigureWriteback(WritebackConfig{Disabled: true})
	if _, err := sw.Store(0, pageSize, 1); err != nil {
		t.Fatal(err)
	}
	if dev.WrittenBytes() != pageSize {
		t.Fatalf("inline store wrote %d bytes at store time, want %d", dev.WrittenBytes(), pageSize)
	}
	if sw.QueueDepth() != 0 {
		t.Fatalf("disabled queue holds entries")
	}
}

// TestTieredLoadBatchPartitionsTiers: a cluster split across pool and SSD
// loads each tier's share in one submission; block IO is reported iff the
// SSD served part of it.
func TestTieredLoadBatchPartitionsTiers(t *testing.T) {
	spec, _ := DeviceByModel("C")
	mkChain := func() *TierChain {
		return NewTierChain(
			DefaultChainSpecs(256*pageSize, 0),
			NewSSDDevice(spec, 4), 3)
	}
	tr := mkChain()
	var hs []Handle
	// Compressible pages land in the pool; incompressible skip its
	// admission threshold and go direct to SSD.
	for i := 0; i < 4; i++ {
		r, err := tr.Store(0, pageSize, 3)
		if err != nil {
			t.Fatal(err)
		}
		hs = append(hs, r.Handle)
	}
	for i := 0; i < 4; i++ {
		r, err := tr.Store(0, pageSize, 1)
		if err != nil {
			t.Fatal(err)
		}
		hs = append(hs, r.Handle)
	}
	if tr.AdmitSkips() != 4 {
		t.Fatalf("admission skips = %d, want 4", tr.AdmitSkips())
	}
	if st := tr.TierStats(1); st.StoredPages != 4 {
		t.Fatalf("SSD tier holds %d pages, want 4", st.StoredPages)
	}
	res := tr.LoadBatch(vclock.Time(vclock.Second), hs)
	if !res.BlockIO {
		t.Fatalf("mixed batch with SSD pages must report block IO")
	}
	if st := tr.Stats(); st.StoredPages != 0 {
		t.Fatalf("batch load left %d pages behind", st.StoredPages)
	}

	// A pool-only batch has no block IO.
	tr2 := mkChain()
	var warmOnly []Handle
	for i := 0; i < 4; i++ {
		r, _ := tr2.Store(0, pageSize, 3)
		warmOnly = append(warmOnly, r.Handle)
	}
	if res := tr2.LoadBatch(vclock.Time(vclock.Second), warmOnly); res.BlockIO {
		t.Fatalf("pool-only batch must not report block IO")
	}
}

// TestSerialFallbacksMatchPerPagePaths: the Serial helpers must behave
// exactly like the per-page methods, for backends that opt out of batching.
func TestSerialFallbacksMatchPerPagePaths(t *testing.T) {
	nvmA := NewNVM(SpecCXLDRAM, 8)
	nvmB := NewNVM(SpecCXLDRAM, 8)
	reqs := []StoreReq{{PageBytes: pageSize, CompressRatio: 1}, {PageBytes: pageSize, CompressRatio: 1}}
	out := make([]StoreResult, 2)
	if n, err := nvmA.StoreBatch(0, reqs, out); n != 2 || err != nil {
		t.Fatalf("nvm StoreBatch = %d, %v", n, err)
	}
	rb1, _ := nvmB.Store(0, pageSize, 1)
	rb2, _ := nvmB.Store(0, pageSize, 1)
	if out[0].Handle != rb1.Handle || out[1].Handle != rb2.Handle {
		t.Fatalf("serial store batch diverged from per-page stores")
	}
	lb := nvmA.LoadBatch(0, []Handle{out[0].Handle, out[1].Handle})
	serial := nvmB.Load(0, rb1.Handle).Latency + nvmB.Load(0, rb2.Handle).Latency
	if lb.Latency != serial {
		t.Fatalf("nvm batch latency %v != serial sum %v", lb.Latency, serial)
	}
}
