package backend

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"tmo/internal/vclock"
)

const pageSize = 4096

func TestDeviceCatalogShape(t *testing.T) {
	// The catalog must reproduce the Fig. 5 envelope: endurance improves
	// monotonically across generations, and p99 read latency spans 9.3ms
	// down to 470us.
	if len(DeviceCatalog) != 7 {
		t.Fatalf("catalog has %d devices, want 7 (A-G)", len(DeviceCatalog))
	}
	for i := 1; i < len(DeviceCatalog); i++ {
		prev, cur := DeviceCatalog[i-1], DeviceCatalog[i]
		if cur.EndurancePTBW <= prev.EndurancePTBW {
			t.Errorf("endurance not improving %s->%s", prev.Model, cur.Model)
		}
		if cur.ReadP99 > prev.ReadP99 {
			t.Errorf("read p99 regressed %s->%s", prev.Model, cur.Model)
		}
	}
	if DeviceCatalog[0].ReadP99 != 9300*vclock.Microsecond {
		t.Errorf("oldest device p99 = %v, want 9.3ms", DeviceCatalog[0].ReadP99)
	}
	if DeviceCatalog[6].ReadP99 != 470*vclock.Microsecond {
		t.Errorf("newest device p99 = %v, want 470us", DeviceCatalog[6].ReadP99)
	}
}

func TestDeviceByModel(t *testing.T) {
	d, err := DeviceByModel("C")
	if err != nil || d.Model != "C" {
		t.Fatalf("DeviceByModel(C) = %v, %v", d, err)
	}
	if _, err := DeviceByModel("Z"); err == nil {
		t.Fatalf("DeviceByModel(Z) should fail")
	}
}

func TestSSDReadLatencyDistribution(t *testing.T) {
	spec, _ := DeviceByModel("C")
	dev := NewSSDDevice(spec, 1)
	now := vclock.Time(0)
	var lats []float64
	// Read at a low rate so queueing is negligible.
	for i := 0; i < 5000; i++ {
		lats = append(lats, float64(dev.Read(now)))
		now = now.Add(vclock.Millisecond)
	}
	// Median should be near the spec.
	var sum float64
	cnt := 0
	for _, l := range lats {
		if l <= float64(spec.ReadMedian) {
			cnt++
		}
		sum += l
	}
	frac := float64(cnt) / float64(len(lats))
	if frac < 0.40 || frac > 0.60 {
		t.Fatalf("fraction below median = %v, want ~0.5", frac)
	}
}

func TestSSDQueueingInflatesLatency(t *testing.T) {
	spec, _ := DeviceByModel("C")
	quiet := NewSSDDevice(spec, 2)
	busy := NewSSDDevice(spec, 2) // same RNG stream: identical base samples

	var quietSum, busySum float64
	nowQ, nowB := vclock.Time(0), vclock.Time(0)
	for i := 0; i < 2000; i++ {
		quietSum += float64(quiet.Read(nowQ))
		nowQ = nowQ.Add(10 * vclock.Millisecond) // 100 IOPS: idle
	}
	for i := 0; i < 2000; i++ {
		busySum += float64(busy.Read(nowB))
		nowB = nowB.Add(3 * vclock.Microsecond) // ~330k IOPS: above the 180k ceiling
	}
	if busySum <= quietSum*1.5 {
		t.Fatalf("saturated device not slower: busy=%v quiet=%v", busySum, quietSum)
	}
}

func TestQueueFactorBounds(t *testing.T) {
	if f := queueFactor(0, 1000); f != 1 {
		t.Fatalf("idle queue factor = %v", f)
	}
	if f := queueFactor(1e9, 1000); f > 10.001 {
		t.Fatalf("saturated queue factor = %v, want <= 10", f)
	}
	if f := queueFactor(100, 0); f != 1 {
		t.Fatalf("zero-capacity queue factor = %v", f)
	}
}

func TestSSDSwapStoreLoadFree(t *testing.T) {
	dev := NewSSDDevice(DeviceCatalog[2], 3)
	sw := NewSSDSwap(dev, 0)
	if sw.Kind() != KindSSD || !strings.Contains(sw.Name(), "ssd") {
		t.Fatalf("kind/name wrong: %v %q", sw.Kind(), sw.Name())
	}
	res, err := sw.Store(0, pageSize, 4.0)
	if err != nil {
		t.Fatal(err)
	}
	if res.StoredBytes != pageSize || res.DeviceWrite != pageSize {
		t.Fatalf("SSD stores must be uncompressed: %+v", res)
	}
	if res.Latency != 0 {
		t.Fatalf("SSD store latency must be async (0), got %v", res.Latency)
	}
	st := sw.Stats()
	if st.StoredPages != 1 || st.StoredBytes != pageSize || st.WrittenBytes != pageSize {
		t.Fatalf("stats after store: %+v", st)
	}
	lr := sw.Load(vclock.Time(vclock.Second), res.Handle)
	if !lr.BlockIO {
		t.Fatalf("SSD load must be block IO")
	}
	if lr.Latency <= 0 {
		t.Fatalf("SSD load latency = %v", lr.Latency)
	}
	if st := sw.Stats(); st.StoredPages != 0 || st.StoredBytes != 0 {
		t.Fatalf("stats after load: %+v", st)
	}

	res2, _ := sw.Store(0, pageSize, 1.0)
	sw.Free(res2.Handle)
	if st := sw.Stats(); st.StoredPages != 0 {
		t.Fatalf("stats after free: %+v", st)
	}
	sw.Free(res2.Handle) // double free is a no-op
}

func TestSSDSwapCapacity(t *testing.T) {
	dev := NewSSDDevice(DeviceCatalog[2], 4)
	sw := NewSSDSwap(dev, 2*pageSize)
	if _, err := sw.Store(0, pageSize, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Store(0, pageSize, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Store(0, pageSize, 1); err != ErrFull {
		t.Fatalf("over-capacity store err = %v, want ErrFull", err)
	}
}

func TestSSDLoadUnknownHandlePanics(t *testing.T) {
	sw := NewSSDSwap(NewSSDDevice(DeviceCatalog[0], 5), 0)
	defer func() {
		if recover() == nil {
			t.Fatalf("no panic for unknown handle")
		}
	}()
	sw.Load(0, 99)
}

func TestEnduranceAccounting(t *testing.T) {
	dev := NewSSDDevice(DeviceCatalog[0], 6) // 1 pTBW
	now := vclock.Time(0)
	for i := 0; i < 100; i++ {
		dev.Write(now, 1<<20) // 1 MiB each
		now = now.Add(vclock.Second)
	}
	if got := dev.WrittenBytes(); got != 100<<20 {
		t.Fatalf("written bytes = %d", got)
	}
	want := float64(100<<20) / 1e15
	if got := dev.EnduranceUsed(); math.Abs(got-want) > 1e-18 {
		t.Fatalf("endurance used = %v, want %v", got, want)
	}
	if r := dev.WriteByteRate(now); math.Abs(r-float64(1<<20))/float64(1<<20) > 0.35 {
		t.Fatalf("write byte rate = %v, want ~1MiB/s", r)
	}
}

func TestFilesystemReads(t *testing.T) {
	dev := NewSSDDevice(DeviceCatalog[2], 7)
	fs := NewFilesystem(dev)
	if fs.Device() != dev {
		t.Fatalf("Device() mismatch")
	}
	lat := fs.ReadPage(0)
	if lat <= 0 {
		t.Fatalf("read latency = %v", lat)
	}
	if fs.Reads() != 1 || dev.Reads() != 1 {
		t.Fatalf("read counters: fs=%d dev=%d", fs.Reads(), dev.Reads())
	}
}

func TestZswapStoreLoad(t *testing.T) {
	z := NewZswap(CodecZstd, AllocZsmalloc, 0, 8)
	if z.Kind() != KindZswap {
		t.Fatalf("kind = %v", z.Kind())
	}
	res, err := z.Store(0, pageSize, 4.0) // Web-like 4x compressibility
	if err != nil {
		t.Fatal(err)
	}
	if res.DeviceWrite != 0 {
		t.Fatalf("zswap must not consume endurance: %+v", res)
	}
	if res.Latency <= 0 {
		t.Fatalf("zswap store must pay compression latency")
	}
	// 4KiB at 4x with zsmalloc overhead 1.03 -> ~1054 bytes.
	want := int64(float64(pageSize) / 4.0 * AllocZsmalloc.Overhead)
	if res.StoredBytes != want {
		t.Fatalf("stored bytes = %d, want %d", res.StoredBytes, want)
	}
	if z.PoolBytes() != want {
		t.Fatalf("pool bytes = %d, want %d", z.PoolBytes(), want)
	}
	lr := z.Load(0, res.Handle)
	if lr.BlockIO {
		t.Fatalf("zswap load must not be block IO")
	}
	if lr.Latency <= 0 {
		t.Fatalf("zswap load latency = %v", lr.Latency)
	}
	if z.PoolBytes() != 0 {
		t.Fatalf("pool bytes after load = %d", z.PoolBytes())
	}
	if z.WriteRate(0) != 0 {
		t.Fatalf("zswap write rate must be 0")
	}
}

func TestZswapPoolLimit(t *testing.T) {
	z := NewZswap(CodecZstd, AllocZsmalloc, 3000, 9)
	if _, err := z.Store(0, pageSize, 2.0); err != nil { // ~2109 bytes
		t.Fatal(err)
	}
	if _, err := z.Store(0, pageSize, 2.0); err != ErrFull {
		t.Fatalf("expected ErrFull, got %v", err)
	}
	if z.Rejected() != 1 {
		t.Fatalf("rejected = %d", z.Rejected())
	}
}

func TestZswapIncompressiblePage(t *testing.T) {
	// ML model data at ratio 1.0 should save nothing (stored >= page size).
	z := NewZswap(CodecZstd, AllocZsmalloc, 0, 10)
	res, err := z.Store(0, pageSize, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if res.StoredBytes < pageSize {
		t.Fatalf("incompressible page stored %d < %d", res.StoredBytes, pageSize)
	}
}

func TestAllocatorPackingCaps(t *testing.T) {
	// A 10x-compressible page cannot exceed the allocator's packing cap.
	if got := AllocZbud.StoredSize(pageSize, 10); got < pageSize/2 {
		t.Fatalf("zbud stored %d, cap is page/2", got)
	}
	if got := AllocZ3fold.StoredSize(pageSize, 10); got < pageSize/3 {
		t.Fatalf("z3fold stored %d, cap is page/3", got)
	}
	// zsmalloc packs much deeper.
	if got := AllocZsmalloc.StoredSize(pageSize, 10); got >= pageSize/3 {
		t.Fatalf("zsmalloc stored %d, want < page/3", got)
	}
	// Ratio below 1 clamps to 1.
	if got := AllocZsmalloc.StoredSize(pageSize, 0.5); got < pageSize {
		t.Fatalf("sub-unity ratio stored %d < page size", got)
	}
}

func TestAllocatorRanking(t *testing.T) {
	// §5.1: zsmalloc gives the biggest savings, then z3fold, then zbud,
	// for well-compressible data.
	zs := AllocZsmalloc.StoredSize(pageSize, 4)
	z3 := AllocZ3fold.StoredSize(pageSize, 4)
	zb := AllocZbud.StoredSize(pageSize, 4)
	if !(zs < z3 && z3 < zb) {
		t.Fatalf("allocator ranking wrong: zsmalloc=%d z3fold=%d zbud=%d", zs, z3, zb)
	}
}

func TestCodecRanking(t *testing.T) {
	// §5.1: zstd compresses best; lz4/lzo decompress faster.
	if !(CodecZstd.RatioFactor > CodecLz4.RatioFactor && CodecZstd.RatioFactor > CodecLzo.RatioFactor) {
		t.Fatalf("zstd must have best ratio")
	}
	if !(CodecLz4.DecompressMedian < CodecZstd.DecompressMedian) {
		t.Fatalf("lz4 must decompress faster than zstd")
	}
}

func TestZswapP90LoadLatencyNear40us(t *testing.T) {
	// §2.5: "the p90 latency of a 4KB read from compressed memory is about
	// 40us" — verify the zstd model lands in that ballpark.
	z := NewZswap(CodecZstd, AllocZsmalloc, 0, 11)
	var lats []float64
	for i := 0; i < 4000; i++ {
		res, _ := z.Store(0, pageSize, 3)
		lr := z.Load(0, res.Handle)
		lats = append(lats, float64(lr.Latency))
	}
	// Count the fraction under 40us; should be around 0.9.
	n := 0
	for _, l := range lats {
		if l <= 40 {
			n++
		}
	}
	frac := float64(n) / float64(len(lats))
	if frac < 0.75 || frac > 0.99 {
		t.Fatalf("fraction of zswap loads <= 40us is %v, want ~0.9", frac)
	}
}

func TestCostTrendShape(t *testing.T) {
	trend := CostTrend()
	if len(trend) != 6 {
		t.Fatalf("%d generations, want 6", len(trend))
	}
	for i, p := range trend {
		if p.CompressedPct >= p.MemoryPct {
			t.Errorf("gen %d: compressed >= memory", i+1)
		}
		if p.SSDPct >= 1.0 {
			t.Errorf("gen %d: iso-capacity SSD cost %v >= 1%%", i+1, p.SSDPct)
		}
		if p.SSDPct >= p.CompressedPct {
			t.Errorf("gen %d: SSD not cheaper than compressed", i+1)
		}
	}
	if last := trend[len(trend)-1]; last.MemoryPct != 33 {
		t.Errorf("final DRAM share = %v, want 33%%", last.MemoryPct)
	}
	for i := 1; i < len(trend); i++ {
		if trend[i].MemoryPct <= trend[i-1].MemoryPct {
			t.Errorf("DRAM share must grow: gen %d", i+1)
		}
	}
	if trend[0].Generation != "Gen 1" {
		t.Errorf("generation name = %q", trend[0].Generation)
	}
}

// Property: backend stats never go negative and logical bytes always cover
// stored pages, under arbitrary store/load/free sequences.
func TestBackendStatsInvariant(t *testing.T) {
	type op struct {
		Ratio uint8
		Load  bool
	}
	check := func(b SwapBackend, ops []op) bool {
		var handles []Handle
		now := vclock.Time(0)
		for _, o := range ops {
			now = now.Add(vclock.Millisecond)
			if o.Load && len(handles) > 0 {
				h := handles[len(handles)-1]
				handles = handles[:len(handles)-1]
				b.Load(now, h)
			} else {
				ratio := 1 + float64(o.Ratio)/64.0
				res, err := b.Store(now, pageSize, ratio)
				if err == nil {
					handles = append(handles, res.Handle)
				}
			}
			st := b.Stats()
			if st.StoredPages < 0 || st.StoredBytes < 0 || st.LogicalBytes < 0 {
				return false
			}
			if st.StoredPages == 0 && (st.StoredBytes != 0 || st.LogicalBytes != 0) {
				return false
			}
			if int64(len(handles)) != st.StoredPages {
				return false
			}
		}
		return true
	}
	f := func(ops []op) bool {
		z := NewZswap(CodecZstd, AllocZsmalloc, 0, 12)
		s := NewSSDSwap(NewSSDDevice(DeviceCatalog[3], 13), 0)
		return check(z, ops) && check(s, ops)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
