package backend

import (
	"tmo/internal/telemetry"
	"tmo/internal/trace"
)

// EnableTelemetry registers the device's traffic counters and per-device
// latency histograms with reg, labelled by catalog model so a fleet of
// hosts with mixed SSD generations stays distinguishable (Fig. 5's
// per-generation latency spread is read off exactly these series).
func (d *SSDDevice) EnableTelemetry(reg *telemetry.Registry) {
	dev := telemetry.Label{Key: "device", Value: d.Spec.Model}
	d.telReads = reg.Counter("backend.ssd.reads", dev)
	d.telWrites = reg.Counter("backend.ssd.writes", dev)
	d.telWrittenBytes = reg.Counter("backend.ssd.written_bytes", dev)
	d.telReadLat = reg.Histogram("backend.ssd.read_latency_us", dev)
	d.telWriteLat = reg.Histogram("backend.ssd.write_latency_us", dev)
	d.telBatchPages = reg.Histogram("backend.ssd.batch_pages", dev)
}

// EnableTelemetry registers the swap partition's async writeback-queue
// instruments: current depth, cumulative drained submissions, and the
// backpressure stalls reclaim served because the queue was full.
func (s *SSDSwap) EnableTelemetry(reg *telemetry.Registry) {
	s.wb.telDrained = reg.Counter("backend.wb.drained")
	s.wb.telStalls = reg.Counter("backend.wb.backpressure_stalls")
	s.wb.telStallUs = reg.Counter("backend.wb.backpressure_us")
	reg.GaugeFunc("backend.wb.queue_depth", func() float64 { return float64(s.wb.depth()) })
	reg.GaugeFunc("backend.wb.queue_high_water", func() float64 { return float64(s.wb.highWater) })
}

// EnableTelemetry registers the pool's counters, its compression-ratio
// histogram, and a pool-occupancy gauge with reg.
func (z *Zswap) EnableTelemetry(reg *telemetry.Registry) {
	z.telStores = reg.Counter("backend.zswap.stores")
	z.telLoads = reg.Counter("backend.zswap.loads")
	z.telRejects = reg.Counter("backend.zswap.rejects")
	z.telRatio = reg.Histogram("backend.zswap.compress_ratio")
	reg.GaugeFunc("backend.zswap.pool_bytes", func() float64 { return float64(z.stats.StoredBytes) })
	reg.GaugeFunc("backend.zswap.logical_bytes", func() float64 { return float64(z.stats.LogicalBytes) })
}

// EnableTelemetry registers the hierarchy's migration counters and wires
// both tiers.
func (t *Tiered) EnableTelemetry(reg *telemetry.Registry) {
	t.warm.EnableTelemetry(reg)
	t.cold.EnableTelemetry(reg)
	t.telWritebacks = reg.Counter("backend.tiered.writebacks")
	t.telDirectSSD = reg.Counter("backend.tiered.direct_ssd")
	reg.GaugeFunc("backend.tiered.warm_pages", func() float64 { return float64(t.WarmPages()) })
	reg.GaugeFunc("backend.tiered.cold_pages", func() float64 { return float64(t.ColdPages()) })
}

// SetTrace attaches an event log the hierarchy reports pool-to-SSD
// writebacks to.
func (t *Tiered) SetTrace(l *trace.Log) { t.trace = l }
