package backend

import (
	"fmt"

	"tmo/internal/telemetry"
	"tmo/internal/trace"
)

// EnableTelemetry registers the device's traffic counters and per-device
// latency histograms with reg, labelled by catalog model so a fleet of
// hosts with mixed SSD generations stays distinguishable (Fig. 5's
// per-generation latency spread is read off exactly these series).
func (d *SSDDevice) EnableTelemetry(reg *telemetry.Registry) {
	dev := telemetry.Label{Key: "device", Value: d.Spec.Model}
	d.telReads = reg.Counter("backend.ssd.reads", dev)
	d.telWrites = reg.Counter("backend.ssd.writes", dev)
	d.telWrittenBytes = reg.Counter("backend.ssd.written_bytes", dev)
	d.telReadLat = reg.Histogram("backend.ssd.read_latency_us", dev)
	d.telWriteLat = reg.Histogram("backend.ssd.write_latency_us", dev)
	d.telBatchPages = reg.Histogram("backend.ssd.batch_pages", dev)
}

// EnableTelemetry registers the swap partition's async writeback-queue
// instruments: current depth, cumulative drained submissions, and the
// backpressure stalls reclaim served because the queue was full.
func (s *SSDSwap) EnableTelemetry(reg *telemetry.Registry) {
	s.wb.telDrained = reg.Counter("backend.wb.drained")
	s.wb.telStalls = reg.Counter("backend.wb.backpressure_stalls")
	s.wb.telStallUs = reg.Counter("backend.wb.backpressure_us")
	reg.GaugeFunc("backend.wb.queue_depth", func() float64 { return float64(s.wb.depth()) })
	reg.GaugeFunc("backend.wb.queue_high_water", func() float64 { return float64(s.wb.highWater) })
}

// EnableTelemetry registers the pool's counters, its compression-ratio
// histogram, and a pool-occupancy gauge with reg.
func (z *Zswap) EnableTelemetry(reg *telemetry.Registry) {
	z.telStores = reg.Counter("backend.zswap.stores")
	z.telLoads = reg.Counter("backend.zswap.loads")
	z.telRejects = reg.Counter("backend.zswap.rejects")
	z.telRatio = reg.Histogram("backend.zswap.compress_ratio")
	reg.GaugeFunc("backend.zswap.pool_bytes", func() float64 { return float64(z.stats.StoredBytes) })
	reg.GaugeFunc("backend.zswap.logical_bytes", func() float64 { return float64(z.stats.LogicalBytes) })
}

// EnableTelemetry registers the chain's per-tier instruments, labelled by
// tier position and substrate (e.g. tier="0-lz4") so stacked compressed
// pools stay distinguishable — the unlabelled backend.zswap.* series would
// merge two pools into one stream. The SSD tier additionally wires its
// writeback-queue instruments.
func (c *TierChain) EnableTelemetry(reg *telemetry.Registry) {
	for i := range c.tiers {
		t := &c.tiers[i]
		lbl := telemetry.Label{Key: "tier", Value: fmt.Sprintf("%d-%s", i, t.spec.Label())}
		t.telStores = reg.Counter("backend.tier.stores", lbl)
		t.telDemotions = reg.Counter("backend.tier.demotions", lbl)
		t.telRefaults = reg.Counter("backend.tier.refaults", lbl)
		b := t.backend()
		reg.GaugeFunc("backend.tier.pages", func() float64 { return float64(b.Stats().StoredPages) }, lbl)
		reg.GaugeFunc("backend.tier.stored_bytes", func() float64 { return float64(b.Stats().StoredBytes) }, lbl)
		reg.GaugeFunc("backend.tier.ratio", func() float64 {
			s := b.Stats()
			if s.StoredBytes == 0 {
				return 0
			}
			return float64(s.LogicalBytes) / float64(s.StoredBytes)
		}, lbl)
		if t.ssd != nil {
			t.ssd.EnableTelemetry(reg)
		}
	}
	c.telPromotions = reg.Counter("backend.chain.promotions")
	c.telAdmitSkips = reg.Counter("backend.chain.admit_skips")
	c.telDemoteStall = reg.Counter("backend.chain.demote_backpressure")
}

// SetTrace attaches an event log the chain reports down-chain demotions to.
func (c *TierChain) SetTrace(l *trace.Log) { c.trace = l }
