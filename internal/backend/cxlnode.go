package backend

import (
	"tmo/internal/telemetry"
	"tmo/internal/vclock"
)

// This file models a byte-addressable CXL far-memory node (§2.5's non-DDR
// bus technologies) as a *placement* tier rather than a swap backend: pages
// demoted to the node stay mapped, so an access is a slow load — no page
// fault, no kernel entry — and the swap tiers become the third rung below
// it. The placement loop in internal/place moves pages between local DRAM
// and this node; internal/mm charges the link latency on every touch of a
// far page.

// CXLNodeSpec describes one CXL-attached memory expander.
type CXLNodeSpec struct {
	// Kind is a catalog label ("cxl-node").
	Kind string
	// CapacityBytes bounds the node; required.
	CapacityBytes int64
	// AccessLatency is the extra latency of touching a far page versus
	// local DRAM — the link round trip as seen by a page-granular access
	// pattern. CXL adds ~3-10x DRAM latency per line; a page touch stands
	// for a request's worth of line accesses to that page, so integrated
	// over them the premium lands on the order of a few microseconds.
	AccessLatency vclock.Duration
	// MigrateBase is the fixed cost of one page migration over the link
	// (setup plus the tail of the copy).
	MigrateBase vclock.Duration
	// LinkBWBytesPerSec is the link's sustained transfer bandwidth, the
	// per-byte term of a migration. A x8 CXL 2.0 link sustains ~16 GB/s.
	LinkBWBytesPerSec float64
}

// SpecCXLNode is the default catalog expander: DRAM behind a x8 CXL link.
var SpecCXLNode = CXLNodeSpec{
	Kind:              "cxl-node",
	AccessLatency:     3 * vclock.Microsecond,
	MigrateBase:       2 * vclock.Microsecond,
	LinkBWBytesPerSec: 16e9,
}

// CXLNode is one byte-addressable far-memory node. It is deliberately NOT a
// SwapBackend: pages placed on it remain mapped and are accessed in place,
// so the node only tracks occupancy and prices accesses and migrations.
// All latencies are deterministic — the access path runs on every touch of
// a far page, so it must be cheap and must not consume randomness.
type CXLNode struct {
	spec CXLNodeSpec
	used int64

	// degrade scales access latency and migration cost and divides link
	// bandwidth; the chaos engine drives it (link contention, a downtrained
	// link). 1 is nominal.
	degrade float64

	// stallFrom/stallUntil is the most recent injected link stall window
	// (a hot-remove glitch, a retrain). Accesses and migrations issued
	// inside the window wait it out; the placement loop aborts promotions
	// whose copy overlapped it.
	stallFrom, stallUntil vclock.Time

	// Cumulative traffic counters.
	demotedPages, promotedPages int64

	telUsed *telemetry.Gauge
}

// NewCXLNode returns a node following spec.
func NewCXLNode(spec CXLNodeSpec) *CXLNode {
	if spec.CapacityBytes <= 0 {
		panic("backend: CXLNode requires positive capacity")
	}
	if spec.AccessLatency <= 0 {
		spec.AccessLatency = SpecCXLNode.AccessLatency
	}
	if spec.MigrateBase <= 0 {
		spec.MigrateBase = SpecCXLNode.MigrateBase
	}
	if spec.LinkBWBytesPerSec <= 0 {
		spec.LinkBWBytesPerSec = SpecCXLNode.LinkBWBytesPerSec
	}
	return &CXLNode{spec: spec, degrade: 1}
}

// Spec returns the node description.
func (n *CXLNode) Spec() CXLNodeSpec { return n.spec }

// Name returns the catalog label.
func (n *CXLNode) Name() string { return n.spec.Kind }

// CapacityBytes returns the node's size.
func (n *CXLNode) CapacityBytes() int64 { return n.spec.CapacityBytes }

// UsedBytes returns the bytes currently placed on the node.
func (n *CXLNode) UsedBytes() int64 { return n.used }

// FreeBytes returns the node's remaining room.
func (n *CXLNode) FreeBytes() int64 { return n.spec.CapacityBytes - n.used }

// TryReserve claims room for bytes, returning false when the node is full.
func (n *CXLNode) TryReserve(bytes int64) bool {
	if n.used+bytes > n.spec.CapacityBytes {
		return false
	}
	n.used += bytes
	n.demotedPages++
	if n.telUsed != nil {
		n.telUsed.Set(float64(n.used))
	}
	return true
}

// Release returns bytes to the node (a promotion back to DRAM, or a freed
// page).
func (n *CXLNode) Release(bytes int64) {
	n.used -= bytes
	if n.used < 0 {
		panic("backend: CXLNode released more than reserved")
	}
	if n.telUsed != nil {
		n.telUsed.Set(float64(n.used))
	}
}

// NotePromote counts one page promoted off the node (occupancy is released
// separately).
func (n *CXLNode) NotePromote() { n.promotedPages++ }

// DemotedPages returns the cumulative pages placed on the node.
func (n *CXLNode) DemotedPages() int64 { return n.demotedPages }

// PromotedPages returns the cumulative pages promoted off the node.
func (n *CXLNode) PromotedPages() int64 { return n.promotedPages }

// AccessDelay prices one touch of a far page at now: the link latency under
// the current degradation, plus the remainder of any injected stall window.
func (n *CXLNode) AccessDelay(now vclock.Time) vclock.Duration {
	d := vclock.Duration(float64(n.spec.AccessLatency) * n.degrade)
	if d < 1 {
		d = 1
	}
	if now < n.stallUntil {
		d += n.stallUntil.Sub(now)
	}
	return d
}

// MigrateCost prices moving bytes over the link starting at now: the fixed
// setup plus the bandwidth term, both scaled by degradation, plus the
// remainder of any stall window the transfer would start inside.
func (n *CXLNode) MigrateCost(now vclock.Time, bytes int64) vclock.Duration {
	us := (float64(n.spec.MigrateBase) + float64(bytes)/n.spec.LinkBWBytesPerSec*1e6) * n.degrade
	d := vclock.Duration(us)
	if d < 1 {
		d = 1
	}
	if now < n.stallUntil {
		d += n.stallUntil.Sub(now)
	}
	return d
}

// SetLinkDegradation scales the link's latency (and divides its bandwidth)
// by factor >= 1; the chaos engine's cxl-degrade fault drives this.
func (n *CXLNode) SetLinkDegradation(factor float64) {
	if factor < 1 {
		factor = 1
	}
	n.degrade = factor
}

// LinkDegradation returns the current degradation factor.
func (n *CXLNode) LinkDegradation() float64 { return n.degrade }

// InjectLinkStall freezes the link for d starting at now — a retrain or
// hot-remove glitch. Accesses during the window wait it out; in-flight
// promotion copies overlapping it are aborted by the placement loop.
func (n *CXLNode) InjectLinkStall(now vclock.Time, d vclock.Duration) {
	until := now.Add(d)
	if until > n.stallUntil {
		n.stallFrom, n.stallUntil = now, until
	}
}

// StalledDuring reports whether the most recent stall window overlaps
// (from, to] — the placement loop's abort test for a promotion copy that
// was in flight over that span.
func (n *CXLNode) StalledDuring(from, to vclock.Time) bool {
	return n.stallFrom < to && n.stallUntil > from
}

// EnableTelemetry registers the node's occupancy gauge with reg.
func (n *CXLNode) EnableTelemetry(reg *telemetry.Registry) {
	reg.GaugeFunc("cxl.capacity_bytes", func() float64 { return float64(n.spec.CapacityBytes) })
	n.telUsed = reg.Gauge("cxl.used_bytes")
	n.telUsed.Set(float64(n.used))
}
