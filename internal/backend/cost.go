package backend

// CostPoint gives, for one server hardware generation, the cost of each
// memory tier as a percentage of total compute-infrastructure cost. This is
// the data model behind the paper's Fig. 1, which motivates TMO: DRAM grows
// toward a third of server cost while iso-capacity SSD stays under 1%.
type CostPoint struct {
	Generation string
	// MemoryPct is DRAM cost as % of infrastructure.
	MemoryPct float64
	// CompressedPct is the cost of serving the same capacity from a
	// compressed-memory pool, assuming the fleet-average 3x compression
	// ratio the paper uses.
	CompressedPct float64
	// SSDPct is the cost of iso-capacity NVMe SSD.
	SSDPct float64
}

// compressionRatioFleet is the fleet-average compression ratio the paper
// uses to estimate compressed-memory cost in Fig. 1.
const compressionRatioFleet = 3.0

// CostTrend returns the Fig. 1 cost model across hardware generations 1-6.
// Gen-1 is near end of life; Gen-5/6 were upcoming at publication. DRAM
// trends to 33% of server cost; compressed memory is DRAM divided by the 3x
// fleet compression ratio; iso-capacity SSD remains under 1% throughout
// (roughly 10x cheaper per byte than compressed memory).
func CostTrend() []CostPoint {
	memory := []float64{15, 18, 22, 26, 30, 33}
	ssd := []float64{0.95, 0.90, 0.85, 0.80, 0.72, 0.65}
	out := make([]CostPoint, len(memory))
	for i := range memory {
		out[i] = CostPoint{
			Generation:    generationName(i + 1),
			MemoryPct:     memory[i],
			CompressedPct: memory[i] / compressionRatioFleet,
			SSDPct:        ssd[i],
		}
	}
	return out
}

func generationName(n int) string {
	return "Gen " + string(rune('0'+n))
}
