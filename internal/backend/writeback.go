package backend

import (
	"tmo/internal/telemetry"
	"tmo/internal/vclock"
)

// This file models asynchronous swap-out writeback as an explicit
// depth-limited queue drained on the virtual clock, following the flusher
// architecture of userspace and cloud swap designs ("Flexible Swapping for
// the Cloud", arXiv 2409.13327): reclaim hands a page (or a clustered batch
// of pages) to the queue and moves on; the device absorbs the writes at its
// own IOPS/byte-rate pace. Two consequences the inline model could not
// express:
//
//   - Device write cost lands on the write meters at *issue* time, spread
//     over the drain schedule, instead of instantaneously at reclaim time —
//     so a reclaim burst no longer spikes the queue factor seen by the very
//     next demand read.
//   - When the queue is full, reclaim blocks until a slot frees (the
//     kernel's writeback congestion throttling). That wait is returned to
//     the reclaimer as a stall, which feeds PSI — slow devices now push
//     back on reclaim instead of silently absorbing unbounded writes.
//
// Injected device stalls (chaos) gate the drain schedule: nothing issues
// while the device is frozen, so a stall backs the queue up and converts
// into reclaim backpressure once the depth limit is hit.

// DefaultWritebackDepth is the queue depth used when WritebackConfig.Depth
// is zero: 64 in-flight write submissions, a typical NVMe swap-out queue
// budget.
const DefaultWritebackDepth = 64

// WritebackConfig bounds the asynchronous swap-out writeback queue.
type WritebackConfig struct {
	// Depth is the maximum number of queued write submissions (a clustered
	// batch counts once); pushes beyond it stall the reclaimer until a
	// slot drains. Zero selects DefaultWritebackDepth.
	Depth int
	// MaxIOPS caps drain submissions per second; zero derives the cap from
	// the device's write-IOPS ceiling.
	MaxIOPS float64
	// MaxBytesPerSec caps the drain byte rate; zero derives it from the
	// device's write bandwidth.
	MaxBytesPerSec float64
	// Disabled reverts to inline synchronous device writes at store time
	// (the pre-queue cost model).
	Disabled bool
}

// wbEntry is one queued write submission.
type wbEntry struct {
	pages int
	bytes int64
	ready vclock.Time // enqueue time; cannot issue earlier
}

// writebackQueue paces queued write submissions onto an SSDDevice.
type writebackQueue struct {
	dev *SSDDevice
	cfg WritebackConfig

	// ring buffer of pending submissions; head indexes the oldest.
	ring []wbEntry
	head int
	n    int

	// nextIssue is when the device is free for the next submission.
	nextIssue vclock.Time

	drained   int64 // completed submissions
	highWater int64 // maximum depth observed

	telDrained, telStalls, telStallUs *telemetry.Counter
}

// newWritebackQueue returns a queue over dev with cfg's limits resolved.
func newWritebackQueue(dev *SSDDevice, cfg WritebackConfig) *writebackQueue {
	if cfg.Depth <= 0 {
		cfg.Depth = DefaultWritebackDepth
	}
	return &writebackQueue{dev: dev, cfg: cfg, ring: make([]wbEntry, cfg.Depth)}
}

// interval returns how long the device is occupied by one submission of the
// given size: the larger of the per-op budget and the byte-transfer budget.
func (q *writebackQueue) interval(bytes int64) vclock.Duration {
	iops := q.cfg.MaxIOPS
	if iops <= 0 {
		iops = q.dev.Spec.WriteIOPS
	}
	var opDur vclock.Duration
	if iops > 0 {
		opDur = vclock.Duration(float64(vclock.Second) / iops)
	}
	bw := q.cfg.MaxBytesPerSec
	if bw <= 0 {
		bw = q.dev.Spec.WriteBWBytesPerSec
	}
	var xferDur vclock.Duration
	if bw > 0 {
		xferDur = vclock.Duration(float64(bytes) / bw * float64(vclock.Second))
	}
	if xferDur > opDur {
		return xferDur
	}
	return opDur
}

// issueAt returns the earliest instant the head submission may issue.
func (q *writebackQueue) issueAt() vclock.Time {
	at := q.ring[q.head].ready
	if q.nextIssue > at {
		at = q.nextIssue
	}
	if q.dev.stallUntil > at {
		at = q.dev.stallUntil
	}
	return at
}

// drain issues every queued submission due by now.
func (q *writebackQueue) drain(now vclock.Time) {
	for q.n > 0 {
		at := q.issueAt()
		if at > now {
			return
		}
		e := q.ring[q.head]
		q.dev.WriteBatch(at, e.pages, e.bytes)
		q.nextIssue = at.Add(q.interval(e.bytes))
		q.head = (q.head + 1) % len(q.ring)
		q.n--
		q.drained++
		if q.telDrained != nil {
			q.telDrained.Inc()
		}
	}
}

// push enqueues one submission of pages/bytes at now and returns the
// backpressure stall the caller must serve: zero while the queue has room,
// otherwise the wait until enough slots drained.
func (q *writebackQueue) push(now vclock.Time, pages int, bytes int64) vclock.Duration {
	q.drain(now)
	var stall vclock.Duration
	at := now
	for q.n >= len(q.ring) {
		// Wait until the head submission issues, freeing one slot.
		free := q.issueAt().Add(q.interval(q.ring[q.head].bytes))
		if free <= at {
			free = at + 1 // device frozen exactly to at: make progress
		}
		stall += free.Sub(at)
		at = free
		q.drain(at)
	}
	q.ring[(q.head+q.n)%len(q.ring)] = wbEntry{pages: pages, bytes: bytes, ready: at}
	q.n++
	if int64(q.n) > q.highWater {
		q.highWater = int64(q.n)
	}
	if stall > 0 && q.telStalls != nil {
		q.telStalls.Inc()
		q.telStallUs.Add(int64(stall))
	}
	return stall
}

// depth returns the current number of queued submissions.
func (q *writebackQueue) depth() int { return q.n }
