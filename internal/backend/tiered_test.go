package backend

import (
	"testing"

	"tmo/internal/vclock"
)

func newTiered(poolBytes int64) (*Tiered, *Zswap, *SSDSwap) {
	z := NewZswap(CodecZstd, AllocZsmalloc, poolBytes, 51)
	dev := NewSSDDevice(DeviceCatalog[2], 52)
	s := NewSSDSwap(dev, 0)
	return NewTiered(z, s, 1.5), z, s
}

func TestTieredRequiresPoolBudget(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("unbounded pool accepted")
		}
	}()
	NewTiered(NewZswap(CodecZstd, AllocZsmalloc, 0, 1), NewSSDSwap(NewSSDDevice(DeviceCatalog[0], 2), 0), 1.5)
}

func TestTieredRoutesByCompressibility(t *testing.T) {
	tr, z, s := newTiered(1 << 20)
	// Compressible page -> pool.
	res, err := tr.Store(0, pageSize, 4.0)
	if err != nil {
		t.Fatal(err)
	}
	if z.Stats().StoredPages != 1 || s.Stats().StoredPages != 0 {
		t.Fatalf("compressible page not in pool")
	}
	// Incompressible page -> straight to SSD.
	res2, err := tr.Store(0, pageSize, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats().StoredPages != 1 {
		t.Fatalf("incompressible page not on SSD")
	}
	if tr.DirectSSD() != 1 {
		t.Fatalf("directSSD = %d", tr.DirectSSD())
	}

	// Loads dispatch to the right tier: pool loads are not block IO, SSD
	// loads are.
	if lr := tr.Load(0, res.Handle); lr.BlockIO {
		t.Fatalf("pool load reported block IO")
	}
	if lr := tr.Load(0, res2.Handle); !lr.BlockIO {
		t.Fatalf("SSD load not block IO")
	}
	if tr.Stats().StoredPages != 0 {
		t.Fatalf("pages leaked: %+v", tr.Stats())
	}
}

func TestTieredWritebackOnPoolPressure(t *testing.T) {
	// Pool budget of ~4 compressed pages; store many compressible pages.
	tr, z, s := newTiered(4 * 1100)
	var handles []Handle
	for i := 0; i < 20; i++ {
		res, err := tr.Store(vclock.Time(i)*vclock.Time(vclock.Millisecond), pageSize, 4.0)
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, res.Handle)
	}
	if tr.Writebacks() == 0 {
		t.Fatalf("no writebacks despite pool pressure")
	}
	if z.PoolBytes() > 4*1100 {
		t.Fatalf("pool over budget: %d", z.PoolBytes())
	}
	if s.Stats().StoredPages == 0 {
		t.Fatalf("no pages migrated to SSD")
	}
	// The most recently stored pages should still be warm (LRU writeback).
	warm := 0
	for _, h := range handles[len(handles)-3:] {
		if e := tr.entries[h]; e.warm {
			warm++
		}
	}
	if warm == 0 {
		t.Fatalf("recent pages not in the warm tier")
	}
	// Every handle must still load, regardless of which tier it ended on.
	for _, h := range handles {
		tr.Load(vclock.Time(vclock.Second), h)
	}
	if got := tr.Stats().StoredPages; got != 0 {
		t.Fatalf("%d pages leaked after loads", got)
	}
}

func TestTieredHandleStableAcrossWriteback(t *testing.T) {
	tr, _, _ := newTiered(2 * 1100)
	first, err := tr.Store(0, pageSize, 4.0)
	if err != nil {
		t.Fatal(err)
	}
	// Push enough pages to force the first one to SSD.
	for i := 0; i < 10; i++ {
		if _, err := tr.Store(0, pageSize, 4.0); err != nil {
			t.Fatal(err)
		}
	}
	if e := tr.entries[first.Handle]; e.warm {
		t.Fatalf("oldest page still warm after pressure")
	}
	lr := tr.Load(0, first.Handle)
	if !lr.BlockIO {
		t.Fatalf("written-back page should load from SSD")
	}
}

func TestTieredFreeBothTiers(t *testing.T) {
	tr, z, s := newTiered(1 << 20)
	a, _ := tr.Store(0, pageSize, 4.0)
	b, _ := tr.Store(0, pageSize, 1.0)
	tr.Free(a.Handle)
	tr.Free(b.Handle)
	tr.Free(b.Handle) // double free is a no-op
	if z.Stats().StoredPages != 0 || s.Stats().StoredPages != 0 {
		t.Fatalf("free leaked pages")
	}
}

func TestTieredAccounting(t *testing.T) {
	tr, _, _ := newTiered(1 << 20)
	tr.Store(0, pageSize, 4.0) // pool
	tr.Store(0, pageSize, 1.0) // ssd
	st := tr.Stats()
	if st.StoredPages != 2 {
		t.Fatalf("stored pages = %d", st.StoredPages)
	}
	if st.LogicalBytes != 2*pageSize {
		t.Fatalf("logical bytes = %d", st.LogicalBytes)
	}
	// Pool bytes only from the warm tier.
	if tr.PoolBytes() >= pageSize {
		t.Fatalf("pool bytes = %d, want compressed size only", tr.PoolBytes())
	}
	if tr.WarmPages() != 1 || tr.ColdPages() != 1 {
		t.Fatalf("tier occupancy: warm=%d cold=%d", tr.WarmPages(), tr.ColdPages())
	}
	if tr.WriteRate(0) < 0 {
		t.Fatalf("negative write rate")
	}
}
