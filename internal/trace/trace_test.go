package trace

import (
	"strings"
	"testing"
	"testing/quick"

	"tmo/internal/vclock"
)

func TestEmitAndEvents(t *testing.T) {
	l := NewLog(4)
	for i := 0; i < 3; i++ {
		l.Emit(vclock.Time(i)*vclock.Time(vclock.Second), KindSenpaiReclaim, "web", "reclaim %d", i)
	}
	evs := l.Events()
	if len(evs) != 3 || l.Total() != 3 {
		t.Fatalf("events = %d, total = %d", len(evs), l.Total())
	}
	if evs[0].Detail != "reclaim 0" || evs[2].Detail != "reclaim 2" {
		t.Fatalf("order wrong: %+v", evs)
	}
}

func TestRingEviction(t *testing.T) {
	l := NewLog(3)
	for i := 0; i < 10; i++ {
		l.Emit(vclock.Time(i), KindOOMKill, "x", "%d", i)
	}
	evs := l.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d", len(evs))
	}
	if evs[0].Detail != "7" || evs[2].Detail != "9" {
		t.Fatalf("ring kept wrong window: %+v", evs)
	}
	if l.Total() != 10 {
		t.Fatalf("total = %d", l.Total())
	}
}

func TestTail(t *testing.T) {
	l := NewLog(10)
	for i := 0; i < 5; i++ {
		l.Emit(vclock.Time(i), KindRestart, "app", "r%d", i)
	}
	out := l.Tail(2)
	if !strings.Contains(out, "r3") || !strings.Contains(out, "r4") || strings.Contains(out, "r2") {
		t.Fatalf("tail = %q", out)
	}
	if got := l.Tail(0); strings.Count(got, "\n") != 5 {
		t.Fatalf("tail(0) should render all: %q", got)
	}
}

func TestBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("no panic")
		}
	}()
	NewLog(0)
}

func TestEventString(t *testing.T) {
	e := Event{Time: vclock.Time(vclock.Second), Kind: KindSenpaiWriteRg, Subject: "ads", Detail: "x"}
	s := e.String()
	if !strings.Contains(s, "senpai.write-regulated") || !strings.Contains(s, "ads") {
		t.Fatalf("event string = %q", s)
	}
}

// Property: the ring always keeps exactly the last min(total, cap) events,
// chronologically ordered.
func TestRingInvariant(t *testing.T) {
	f := func(n uint8, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		l := NewLog(capacity)
		for i := 0; i < int(n); i++ {
			l.Emit(vclock.Time(i), KindRestart, "s", "%d", i)
		}
		evs := l.Events()
		want := int(n)
		if want > capacity {
			want = capacity
		}
		if len(evs) != want {
			return false
		}
		for i := 1; i < len(evs); i++ {
			if evs[i].Time <= evs[i-1].Time {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
