package trace

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"tmo/internal/vclock"
)

func TestEmitAndEvents(t *testing.T) {
	l := NewLog(4)
	for i := 0; i < 3; i++ {
		l.Emit(vclock.Time(i)*vclock.Time(vclock.Second), KindSenpaiReclaim, "web", "reclaim %d", i)
	}
	evs := l.Events()
	if len(evs) != 3 || l.Total() != 3 {
		t.Fatalf("events = %d, total = %d", len(evs), l.Total())
	}
	if evs[0].Detail != "reclaim 0" || evs[2].Detail != "reclaim 2" {
		t.Fatalf("order wrong: %+v", evs)
	}
}

func TestRingEviction(t *testing.T) {
	l := NewLog(3)
	for i := 0; i < 10; i++ {
		l.Emit(vclock.Time(i), KindOOMKill, "x", "%d", i)
	}
	evs := l.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d", len(evs))
	}
	if evs[0].Detail != "7" || evs[2].Detail != "9" {
		t.Fatalf("ring kept wrong window: %+v", evs)
	}
	if l.Total() != 10 {
		t.Fatalf("total = %d", l.Total())
	}
}

func TestTail(t *testing.T) {
	l := NewLog(10)
	for i := 0; i < 5; i++ {
		l.Emit(vclock.Time(i), KindRestart, "app", "r%d", i)
	}
	out := l.Tail(2)
	if !strings.Contains(out, "r3") || !strings.Contains(out, "r4") || strings.Contains(out, "r2") {
		t.Fatalf("tail = %q", out)
	}
	if got := l.Tail(0); strings.Count(got, "\n") != 5 {
		t.Fatalf("tail(0) should render all: %q", got)
	}
}

func TestBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("no panic")
		}
	}()
	NewLog(0)
}

func TestEventString(t *testing.T) {
	e := Event{Time: vclock.Time(vclock.Second), Kind: KindSenpaiWriteRg, Subject: "ads", Detail: "x"}
	s := e.String()
	if !strings.Contains(s, "senpai.write-regulated") || !strings.Contains(s, "ads") {
		t.Fatalf("event string = %q", s)
	}
}

// Total must keep counting across many full ring wraps, not reset or
// saturate when the ring recycles slots.
func TestTotalAcrossManyWraps(t *testing.T) {
	const capacity = 7
	l := NewLog(capacity)
	const emits = capacity*100 + 3 // 100+ wraps, deliberately not a multiple
	for i := 0; i < emits; i++ {
		l.Emit(vclock.Time(i), KindMMRefault, "g", "%d", i)
	}
	if l.Total() != emits {
		t.Fatalf("total = %d, want %d", l.Total(), emits)
	}
	evs := l.Events()
	if len(evs) != capacity {
		t.Fatalf("retained %d, want %d", len(evs), capacity)
	}
	for i, e := range evs {
		if want := emits - capacity + i; e.Detail != fmt.Sprintf("%d", want) {
			t.Fatalf("event %d = %q, want %d", i, e.Detail, want)
		}
	}
}

// The detail column must start at the same offset whether the subject is
// short or over-wide; over-wide subjects are clipped, not allowed to shift
// the columns.
func TestEventStringAlignment(t *testing.T) {
	short := Event{Time: 0, Kind: KindOOMKill, Subject: "web", Detail: "DETAIL"}
	long := Event{Time: 0, Kind: KindOOMKill,
		Subject: "workload-with-an-extremely-long-cgroup-name", Detail: "DETAIL"}
	si, li := strings.Index(short.String(), "DETAIL"), strings.Index(long.String(), "DETAIL")
	if si < 0 || si != li {
		t.Fatalf("detail offsets differ: %d vs %d\n%q\n%q", si, li, short.String(), long.String())
	}
	if !strings.Contains(long.String(), "~") {
		t.Fatalf("long subject not clipped: %q", long.String())
	}
	if strings.Contains(short.String(), "~") {
		t.Fatalf("short subject clipped: %q", short.String())
	}
	// Clipping must also hold for over-wide kinds.
	wideKind := Event{Time: 0, Kind: Kind("some.very.long.subsystem.kind.name"), Subject: "s", Detail: "DETAIL"}
	if wi := strings.Index(wideKind.String(), "DETAIL"); wi != si {
		t.Fatalf("wide kind shifted detail column: %d vs %d\n%q", wi, si, wideKind.String())
	}
}

// Property: the ring always keeps exactly the last min(total, cap) events,
// chronologically ordered.
func TestRingInvariant(t *testing.T) {
	f := func(n uint8, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		l := NewLog(capacity)
		for i := 0; i < int(n); i++ {
			l.Emit(vclock.Time(i), KindRestart, "s", "%d", i)
		}
		evs := l.Events()
		want := int(n)
		if want > capacity {
			want = capacity
		}
		if len(evs) != want {
			return false
		}
		for i := 1; i < len(evs); i++ {
			if evs[i].Time <= evs[i-1].Time {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
