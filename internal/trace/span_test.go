package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"tmo/internal/vclock"
)

func TestSpanNesting(t *testing.T) {
	r := NewRecorder(16)
	tick := r.Begin(0, KindSenpaiTick, "tick")
	probe := r.Begin(10, KindSenpaiReclaim, "probe web")
	probe.Annotate("mem_pressure", 0.0004)
	reclaim := r.Begin(12, KindMMReclaim, "memory.reclaim")
	reclaim.End(20)
	probe.End(25)
	r.Instant(26, KindZswapReject, "pool full", nil)
	tick.End(30)

	if r.OpenSpans() != 0 {
		t.Fatalf("open spans = %d", r.OpenSpans())
	}
	recs := r.Records()
	if len(recs) != 4 {
		t.Fatalf("records = %d", len(recs))
	}
	// Ordered by start, parents before children.
	wantNames := []string{"tick", "probe web", "memory.reclaim", "pool full"}
	wantDepth := []int{0, 1, 2, 1}
	for i, rec := range recs {
		if rec.Name != wantNames[i] || rec.Depth != wantDepth[i] {
			t.Fatalf("record %d = %q depth %d, want %q depth %d",
				i, rec.Name, rec.Depth, wantNames[i], wantDepth[i])
		}
	}
	if recs[0].Duration() != 30 || recs[1].Duration() != 15 {
		t.Fatalf("durations wrong: %v %v", recs[0].Duration(), recs[1].Duration())
	}
	if !recs[3].Instant || recs[3].Duration() != 0 {
		t.Fatalf("instant record wrong: %+v", recs[3])
	}
	if recs[1].Args["mem_pressure"] != 0.0004 {
		t.Fatalf("annotation lost: %+v", recs[1].Args)
	}
	// Children are contained in their parent's interval — the property
	// Perfetto uses to reconstruct the stack on one track.
	if recs[2].Start < recs[1].Start || recs[2].End > recs[1].End {
		t.Fatalf("child escapes parent: %+v in %+v", recs[2], recs[1])
	}
}

func TestSpanOutOfOrderEndPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("no panic")
		}
	}()
	r := NewRecorder(4)
	a := r.Begin(0, KindSenpaiTick, "a")
	_ = r.Begin(1, KindSenpaiTick, "b")
	a.End(2) // b is still open
}

func TestSpanDoubleEndIsNoop(t *testing.T) {
	r := NewRecorder(4)
	a := r.Begin(0, KindSenpaiTick, "a")
	a.End(5)
	a.End(9) // ignored
	if r.Len() != 1 || r.Records()[0].End != 5 {
		t.Fatalf("double end changed the record: %+v", r.Records())
	}
}

func TestRecorderDropsAtCapacity(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < 5; i++ {
		r.Instant(vclock.Time(i), KindMMRefault, "e", nil)
	}
	if r.Len() != 2 || r.Dropped() != 3 {
		t.Fatalf("len=%d dropped=%d", r.Len(), r.Dropped())
	}
	// The beginning of the run is preserved, not the end.
	if r.Records()[0].Start != 0 || r.Records()[1].Start != 1 {
		t.Fatalf("kept wrong records: %+v", r.Records())
	}
}

func TestChromeTraceExport(t *testing.T) {
	r := NewRecorder(16)
	tick := r.Begin(1000, KindSenpaiTick, "tick")
	probe := r.Begin(1100, KindSenpaiReclaim, "probe feed")
	probe.Annotate("requested_bytes", int64(4096))
	probe.End(1400)
	tick.End(1500)
	r.Instant(1600, KindOOMKill, "kill", map[string]any{"victim": "cache-a"})

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("events = %d", len(doc.TraceEvents))
	}
	ev := doc.TraceEvents[0]
	if ev["ph"] != "X" || ev["ts"] != float64(1000) || ev["dur"] != float64(500) {
		t.Fatalf("tick event wrong: %+v", ev)
	}
	if ev["pid"] != float64(1) || ev["tid"] != float64(1) {
		t.Fatalf("track ids wrong: %+v", ev)
	}
	if doc.TraceEvents[1]["cat"] != "senpai.reclaim" {
		t.Fatalf("cat wrong: %+v", doc.TraceEvents[1])
	}
	inst := doc.TraceEvents[2]
	if inst["ph"] != "i" || inst["s"] != "t" {
		t.Fatalf("instant event wrong: %+v", inst)
	}
}

func TestJSONLExport(t *testing.T) {
	r := NewRecorder(16)
	s := r.Begin(5, KindSenpaiTick, "tick")
	s.End(25)
	r.Instant(30, KindMMRefault, "refault", map[string]any{"group": "web"})

	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d: %q", len(lines), buf.String())
	}
	var first, second map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	if first["type"] != "span" || first["dur_us"] != float64(20) || first["t"] != float64(5) {
		t.Fatalf("span line wrong: %+v", first)
	}
	if second["type"] != "event" || second["cat"] != "mm.refault" {
		t.Fatalf("event line wrong: %+v", second)
	}
}

func TestExportLogJSONL(t *testing.T) {
	l := NewLog(8)
	l.Emit(7, KindBackendWriteback, "tiered", "wrote back %d pages", 3)
	var buf bytes.Buffer
	if err := ExportLogJSONL(&buf, l); err != nil {
		t.Fatal(err)
	}
	var line map[string]any
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &line); err != nil {
		t.Fatal(err)
	}
	if line["cat"] != "backend.writeback" || line["name"] != "tiered" {
		t.Fatalf("line = %+v", line)
	}
	args, _ := line["args"].(map[string]any)
	if args["detail"] != "wrote back 3 pages" {
		t.Fatalf("detail lost: %+v", line)
	}
}
