// Package trace provides a bounded, allocation-light event log for the
// userspace controllers. Production TMO ships controller decisions to
// fleet telemetry; here the same role is played by an in-memory ring that
// tools (tmosim -trace) can dump for debugging a run.
package trace

import (
	"fmt"
	"strings"

	"tmo/internal/vclock"
)

// Kind classifies an event source.
type Kind string

// Well-known event kinds.
const (
	KindSenpaiReclaim Kind = "senpai.reclaim"
	KindSenpaiBackoff Kind = "senpai.backoff"
	KindSenpaiWriteRg Kind = "senpai.write-regulated"
	KindSenpaiTick    Kind = "senpai.tick"
	KindOOMKill       Kind = "oomd.kill"
	KindRestart       Kind = "workload.restart"
	// Memory-management and backend events, promoted from ad-hoc counters
	// so decision logs can correlate controller actions with their kernel-
	// and device-level consequences.
	KindMMRefault        Kind = "mm.refault"
	KindMMReclaim        Kind = "mm.reclaim"
	KindBackendWriteback Kind = "backend.writeback"
	KindZswapReject      Kind = "zswap.reject"
	// Chaos-engine perturbations: a fault going active and returning to
	// nominal, logged next to the controller reactions they provoke.
	KindChaosInject  Kind = "chaos.inject"
	KindChaosRestore Kind = "chaos.restore"
	// Fleet control-plane decisions: stage transitions of a staged policy
	// rollout, guardrail verdicts (per candidate and device cohort),
	// candidate drops and promotions of the bandit race, automatic
	// rollbacks, and host lifecycle (crash/rejoin/policy-rebuild) events.
	KindRolloutStage    Kind = "rollout.stage"
	KindRolloutTrip     Kind = "rollout.guardrail-trip"
	KindRolloutDrop     Kind = "rollout.candidate-drop"
	KindRolloutPromote  Kind = "rollout.promote"
	KindRolloutRollback Kind = "rollout.rollback"
	KindRolloutComplete Kind = "rollout.complete"
	KindRolloutPush     Kind = "rollout.policy-push"
	KindHostCrash       Kind = "rollout.host-crash"
	KindHostRejoin      Kind = "rollout.host-rejoin"
	KindHostRebuild     Kind = "rollout.host-rebuild"
	// Observability-plane events: an SLO burn-rate monitor firing ahead of
	// a barrier verdict, and a flight-recorder bundle being cut.
	KindSLOBurn    Kind = "slo.burn-alert"
	KindFlightDump Kind = "rollout.flight-dump"
	// Placement-loop events: promotion outcomes (committed or aborted at
	// zero cost) and watermark demotions to the far-memory node.
	KindPlacePromote Kind = "place.promote"
	KindPlaceDemote  Kind = "place.demote"
	// Twin-fidelity recalibration advice: the pressure-gap burn monitor
	// fired, so the campaign's calibration surface should be re-probed.
	KindRolloutRecalib Kind = "rollout.recalibrate-advice"
)

// Event is one recorded decision.
type Event struct {
	Time    vclock.Time
	Kind    Kind
	Subject string
	Detail  string
}

// Column widths for the String rendering; over-long fields are truncated so
// the detail column stays aligned regardless of subject length.
const (
	timeCol    = 10
	kindCol    = 22
	subjectCol = 18
)

// clip truncates s to width characters, marking the cut with a '~'.
func clip(s string, width int) string {
	if len(s) <= width {
		return s
	}
	return s[:width-1] + "~"
}

// String renders the event as one log line with fixed-width columns.
func (e Event) String() string {
	return fmt.Sprintf("%-*s %-*s %-*s %s",
		timeCol, clip(e.Time.String(), timeCol),
		kindCol, clip(string(e.Kind), kindCol),
		subjectCol, clip(e.Subject, subjectCol),
		e.Detail)
}

// Log is a fixed-capacity ring of events. The zero value is unusable; call
// NewLog.
type Log struct {
	ring  []Event
	next  int
	total int64
}

// NewLog returns a log retaining the most recent capacity events.
func NewLog(capacity int) *Log {
	if capacity <= 0 {
		panic("trace: capacity must be positive")
	}
	return &Log{ring: make([]Event, 0, capacity)}
}

// Emit records an event.
func (l *Log) Emit(now vclock.Time, kind Kind, subject, format string, args ...any) {
	e := Event{Time: now, Kind: kind, Subject: subject, Detail: fmt.Sprintf(format, args...)}
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, e)
	} else {
		l.ring[l.next] = e
		l.next = (l.next + 1) % cap(l.ring)
	}
	l.total++
}

// Total returns how many events were ever emitted (including evicted ones).
func (l *Log) Total() int64 { return l.total }

// Events returns the retained events in chronological order.
func (l *Log) Events() []Event {
	if len(l.ring) < cap(l.ring) {
		return append([]Event(nil), l.ring...)
	}
	out := make([]Event, 0, len(l.ring))
	out = append(out, l.ring[l.next:]...)
	out = append(out, l.ring[:l.next]...)
	return out
}

// Tail renders the last n retained events, oldest first.
func (l *Log) Tail(n int) string {
	evs := l.Events()
	if n > 0 && len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	var b strings.Builder
	for _, e := range evs {
		b.WriteString(e.String())
		b.WriteString("\n")
	}
	return b.String()
}
