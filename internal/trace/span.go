package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"tmo/internal/vclock"
)

// Span is one in-progress timed operation. Spans nest: a Senpai tick span
// contains one probe span per target cgroup, which in turn contains the
// reclaim call it issued. End finishes the span and commits it to the
// recorder.
type Span struct {
	rec   *Recorder
	name  string
	cat   Kind
	start vclock.Time
	depth int
	args  map[string]any
	ended bool
}

// Annotate attaches a key/value argument rendered in the exporters. Calling
// it after End is a no-op.
func (s *Span) Annotate(key string, value any) {
	if s == nil || s.ended {
		return
	}
	if s.args == nil {
		s.args = make(map[string]any)
	}
	s.args[key] = value
}

// End finishes the span at instant now. Spans must end in LIFO order
// relative to their recorder (enforced by panic, since out-of-order ends
// always indicate instrumentation bugs, like unbalanced PSI stalls).
func (s *Span) End(now vclock.Time) {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.rec.end(s, now)
}

// Record is one finished span or instant event on the timeline.
type Record struct {
	// Name describes the operation ("tick", "probe feed", ...).
	Name string
	// Cat is the event category, reusing the ring log's Kind namespace.
	Cat Kind
	// Start and End bound the span; instants have End == Start.
	Start, End vclock.Time
	// Depth is the span's nesting level at Begin time (0 = top level).
	Depth int
	// Instant marks a zero-duration point event.
	Instant bool
	// Args carries the span's annotations.
	Args map[string]any
}

// Duration returns the span's length.
func (r Record) Duration() vclock.Duration { return r.End.Sub(r.Start) }

// Recorder collects spans and instant events for one run. Unlike the ring
// Log — which keeps only the most recent events for interactive debugging —
// the recorder retains the timeline up to a capacity so a whole run can be
// exported and opened in a trace viewer; past capacity it counts drops
// rather than evicting, preserving the run's beginning (the transient the
// paper's figures mostly care about).
type Recorder struct {
	max     int
	records []Record
	stack   []*Span
	dropped int64
}

// NewRecorder returns a recorder retaining at most capacity records.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		panic("trace: recorder capacity must be positive")
	}
	return &Recorder{max: capacity}
}

// Begin opens a span at instant now, nested under any currently open span.
func (r *Recorder) Begin(now vclock.Time, cat Kind, name string) *Span {
	s := &Span{rec: r, name: name, cat: cat, start: now, depth: len(r.stack)}
	r.stack = append(r.stack, s)
	return s
}

// end commits a finished span.
func (r *Recorder) end(s *Span, now vclock.Time) {
	if len(r.stack) == 0 || r.stack[len(r.stack)-1] != s {
		panic(fmt.Sprintf("trace: span %q ended out of order", s.name))
	}
	r.stack = r.stack[:len(r.stack)-1]
	if now < s.start {
		now = s.start
	}
	r.commit(Record{Name: s.name, Cat: s.cat, Start: s.start, End: now, Depth: s.depth, Args: s.args})
}

// Instant records a zero-duration point event at the current nesting depth.
func (r *Recorder) Instant(now vclock.Time, cat Kind, name string, args map[string]any) {
	r.commit(Record{Name: name, Cat: cat, Start: now, End: now, Depth: len(r.stack), Instant: true, Args: args})
}

// commit appends a record, or counts a drop at capacity.
func (r *Recorder) commit(rec Record) {
	if len(r.records) >= r.max {
		r.dropped++
		return
	}
	r.records = append(r.records, rec)
}

// Records returns the retained timeline ordered by start time (ties broken
// by nesting depth so parents sort before their children).
func (r *Recorder) Records() []Record {
	out := append([]Record(nil), r.records...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Depth < out[j].Depth
	})
	return out
}

// Len returns how many records are retained.
func (r *Recorder) Len() int { return len(r.records) }

// Dropped returns how many records were discarded at capacity.
func (r *Recorder) Dropped() int64 { return r.dropped }

// OpenSpans returns how many spans are begun but not yet ended; exporters
// ignore them, so callers flush by ending spans before exporting.
func (r *Recorder) OpenSpans() int { return len(r.stack) }

// chromeEvent is one entry of the Chrome trace_event format (the JSON
// schema chrome://tracing and Perfetto ingest).
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"` // microseconds
	Dur   *int64         `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level trace_event JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// WriteChromeTrace renders the timeline in Chrome trace_event JSON so a run
// opens directly in chrome://tracing or ui.perfetto.dev. Spans become
// complete ("X") events nested by time containment on one thread track;
// instants become point ("i") events. Timestamps are virtual microseconds.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	recs := r.Records()
	out := chromeTrace{
		TraceEvents:     make([]chromeEvent, 0, len(recs)),
		DisplayTimeUnit: "ms",
	}
	if r.dropped > 0 {
		out.OtherData = map[string]any{"droppedRecords": r.dropped}
	}
	for _, rec := range recs {
		ev := chromeEvent{
			Name: rec.Name,
			Cat:  string(rec.Cat),
			TS:   int64(rec.Start),
			PID:  1,
			TID:  1,
			Args: rec.Args,
		}
		if rec.Instant {
			ev.Phase = "i"
			ev.Scope = "t"
		} else {
			ev.Phase = "X"
			dur := int64(rec.Duration())
			ev.Dur = &dur
		}
		out.TraceEvents = append(out.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// timelineLine is the JSONL schema: one self-contained object per line, in
// start-time order, the format downstream log pipelines ingest.
type timelineLine struct {
	T     int64          `json:"t"` // start, virtual microseconds
	Type  string         `json:"type"`
	Cat   string         `json:"cat"`
	Name  string         `json:"name"`
	DurUS int64          `json:"dur_us,omitempty"`
	Depth int            `json:"depth"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteJSONL renders the timeline as JSON Lines, one record per line.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, rec := range r.Records() {
		line := timelineLine{
			T:     int64(rec.Start),
			Type:  "span",
			Cat:   string(rec.Cat),
			Name:  rec.Name,
			DurUS: int64(rec.Duration()),
			Depth: rec.Depth,
			Args:  rec.Args,
		}
		if rec.Instant {
			line.Type = "event"
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return nil
}

// ExportLogJSONL renders a ring log's retained events in the same JSONL
// schema, so the bounded decision log and the span timeline can be merged
// by downstream tooling.
func ExportLogJSONL(w io.Writer, l *Log) error {
	enc := json.NewEncoder(w)
	for _, e := range l.Events() {
		line := timelineLine{
			T:    int64(e.Time),
			Type: "event",
			Cat:  string(e.Kind),
			Name: e.Subject,
			Args: map[string]any{"detail": e.Detail},
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return nil
}
