// Package slo implements multi-window burn-rate monitors over the tsdb
// store, in the style of SRE fast/slow-burn alerting: an alert fires when
// both a short recent window and a longer window burn error budget faster
// than their thresholds, giving early warning with debounce.
//
// The monitors complement — not replace — the rollout barrier guardrails.
// Guardrails judge stage-cumulative aggregates, so a regression that ramps
// (PSI climbing as Senpai over-reclaims, swap filling toward the latch)
// crosses an instantaneous window threshold before it drags the cumulative
// mean over the line. The burn monitors read the same series the barrier
// wrote and fire in the gap, which is exactly the early-warning role fleet
// monitoring plays in TMO's operation (the paper's guardrails were watched
// by humans and dashboards long before any automated rollback).
package slo

import (
	"fmt"

	"tmo/internal/telemetry"
	"tmo/internal/tsdb"
	"tmo/internal/vclock"
)

// Kind selects how a monitor turns a window of samples into a burn rate.
type Kind int

const (
	// Upper burns when the windowed mean approaches the budget from
	// below: burn = mean / budget. PSI overshoot, fault p99.
	Upper Kind = iota
	// Lower burns when the windowed mean dips toward the budget from
	// above: burn = budget / mean. RPS ratio vs the control cohort.
	Lower
	// Slope burns when the linear trend of the window, projected Horizon
	// ahead, would cross the budget: burn = projected / budget. Swap
	// exhaustion (utilisation climbing toward the latch fraction).
	Slope
)

func (k Kind) String() string {
	switch k {
	case Upper:
		return "upper"
	case Lower:
		return "lower"
	case Slope:
		return "slope"
	}
	return "invalid"
}

// Monitor is one burn-rate rule over a metric's series.
type Monitor struct {
	// Name identifies the monitor in alerts and counters.
	Name string
	// Metric is the tsdb metric the monitor reads.
	Metric string
	// Match restricts the monitor to series carrying these labels
	// (subset match); nil watches every series of the metric.
	Match []telemetry.Label
	// Kind selects the burn computation.
	Kind Kind
	// Budget is the error budget: the threshold value the metric must
	// stay below (Upper, Slope) or above (Lower). A monitor with
	// Budget <= 0 is disabled, mirroring guardrail zero semantics.
	Budget float64
	// Fast and Slow are window lengths in samples (scrapes). Defaults: 1
	// and 4. The slow window uses however many samples exist when the
	// series is younger than Slow.
	Fast, Slow int
	// FastBurn and SlowBurn are the burn thresholds; both must be met.
	// Defaults: 1.0 and 0.5.
	FastBurn, SlowBurn float64
	// Horizon is the Slope projection distance. Default: 4 minutes
	// (eight 30s windows).
	Horizon vclock.Duration
}

func (m Monitor) fast() int {
	if m.Fast <= 0 {
		return 1
	}
	return m.Fast
}

func (m Monitor) slow() int {
	if m.Slow <= 0 {
		return 4
	}
	return m.Slow
}

func (m Monitor) fastBurn() float64 {
	if m.FastBurn <= 0 {
		return 1.0
	}
	return m.FastBurn
}

func (m Monitor) slowBurn() float64 {
	if m.SlowBurn <= 0 {
		return 0.5
	}
	return m.SlowBurn
}

func (m Monitor) horizon() vclock.Duration {
	if m.Horizon <= 0 {
		return 4 * vclock.Minute
	}
	return m.Horizon
}

// burn computes the burn rate over the last n samples of pts.
func (m Monitor) burn(pts []tsdb.Point, n int) float64 {
	if len(pts) == 0 {
		return 0
	}
	if len(pts) > n {
		pts = pts[len(pts)-n:]
	}
	switch m.Kind {
	case Upper:
		return mean(pts) / m.Budget
	case Lower:
		mu := mean(pts)
		if mu <= 0 {
			return 1e12 // total outage: infinite burn, kept finite for JSON
		}
		return m.Budget / mu
	case Slope:
		// A trend needs evidence: with fewer than two samples, or samples
		// carrying no time spread, there is no slope to project — burn 0
		// rather than alerting off a single point's level.
		if len(pts) < 2 {
			return 0
		}
		first, last := pts[0], pts[len(pts)-1]
		dt := last.T.Sub(first.T).Seconds()
		if dt <= 0 {
			return 0
		}
		proj := last.V
		if slope := (last.V - first.V) / dt; slope > 0 {
			proj = last.V + slope*m.horizon().Seconds()
		}
		return proj / m.Budget
	}
	return 0
}

func mean(pts []tsdb.Point) float64 {
	s := 0.0
	for _, p := range pts {
		s += p.V
	}
	return s / float64(len(pts))
}

// Alert is one rising-edge burn alert.
type Alert struct {
	Monitor string
	Series  string // full series identity the alert fired on
	T       vclock.Time
	Fast    float64 // fast-window burn rate
	Slow    float64 // slow-window burn rate
}

// Detail renders the alert's numbers for event logs.
func (a Alert) Detail() string {
	return fmt.Sprintf("fast-burn %.2f slow-burn %.2f", a.Fast, a.Slow)
}

// Evaluator runs a monitor set against a store. Alerts are edge-triggered:
// a series alerting on consecutive evaluations reports once, re-arming when
// its burn drops below threshold. Eval is driven from the single-threaded
// barrier path and is not safe for concurrent use.
type Evaluator struct {
	DB       *tsdb.DB
	Monitors []Monitor
	// Telemetry, when non-nil, counts alerts under
	// "slo.burn_alerts"{monitor=...}.
	Telemetry *telemetry.Registry

	burning map[string]bool
}

// Eval evaluates every monitor at instant now and returns the new alerts,
// in (monitor, series) order.
func (e *Evaluator) Eval(now vclock.Time) []Alert {
	if e.burning == nil {
		e.burning = make(map[string]bool)
	}
	var alerts []Alert
	for _, m := range e.Monitors {
		if m.Budget <= 0 {
			continue
		}
		for _, s := range e.DB.Select(m.Metric, m.Match...) {
			if len(s.Points) < m.fast() {
				continue
			}
			fast := m.burn(s.Points, m.fast())
			slow := m.burn(s.Points, m.slow())
			key := m.Name + "|" + s.ID()
			hot := fast >= m.fastBurn() && slow >= m.slowBurn()
			if hot && !e.burning[key] {
				alerts = append(alerts, Alert{Monitor: m.Name, Series: s.ID(), T: now, Fast: fast, Slow: slow})
				if e.Telemetry != nil {
					e.Telemetry.Counter("slo.burn_alerts",
						telemetry.Label{Key: "monitor", Value: m.Name}).Inc()
				}
			}
			e.burning[key] = hot
		}
	}
	return alerts
}
