package slo

import (
	"testing"

	"tmo/internal/telemetry"
	"tmo/internal/tsdb"
	"tmo/internal/vclock"
)

const win = vclock.Time(30 * vclock.Second)

// feed appends vals at consecutive windows starting at window start+1.
func feed(db *tsdb.DB, metric string, labels []telemetry.Label, start int, vals ...float64) {
	for i, v := range vals {
		db.Append(vclock.Time(start+i+1)*win, metric, labels, v)
	}
}

func TestUpperBurnRisingEdge(t *testing.T) {
	db := tsdb.New(tsdb.Config{})
	reg := telemetry.NewRegistry()
	ev := &Evaluator{
		DB:        db,
		Monitors:  []Monitor{{Name: "psi-burn", Metric: "psi", Kind: Upper, Budget: 0.01, Fast: 1, Slow: 4}},
		Telemetry: reg,
	}

	// Below budget: quiet.
	feed(db, "psi", nil, 0, 0.001, 0.002, 0.002)
	if got := ev.Eval(3 * win); len(got) != 0 {
		t.Fatalf("alerts below budget: %+v", got)
	}
	// Overshoot: fast burn 1.5, slow mean well over half budget.
	feed(db, "psi", nil, 3, 0.015)
	got := ev.Eval(4 * win)
	if len(got) != 1 {
		t.Fatalf("alerts = %+v, want 1", got)
	}
	a := got[0]
	if a.Monitor != "psi-burn" || a.Series != "psi" || a.Fast < 1.4 || a.Fast > 1.6 {
		t.Fatalf("alert = %+v", a)
	}
	if a.Detail() == "" {
		t.Fatalf("empty alert detail")
	}
	// Still burning: edge-triggered, no re-alert.
	feed(db, "psi", nil, 4, 0.02)
	if got := ev.Eval(5 * win); len(got) != 0 {
		t.Fatalf("re-alert while burning: %+v", got)
	}
	// Recovers, then burns again: re-armed.
	feed(db, "psi", nil, 5, 0.001, 0.001)
	if got := ev.Eval(7 * win); len(got) != 0 {
		t.Fatalf("alert during recovery: %+v", got)
	}
	feed(db, "psi", nil, 7, 0.03)
	if got := ev.Eval(8 * win); len(got) != 1 {
		t.Fatalf("no re-alert after recovery: %+v", got)
	}
	if c := reg.Counter("slo.burn_alerts", telemetry.Label{Key: "monitor", Value: "psi-burn"}).Value(); c != 2 {
		t.Fatalf("alert counter = %d, want 2", c)
	}
}

func TestSlowWindowDebounce(t *testing.T) {
	db := tsdb.New(tsdb.Config{})
	ev := &Evaluator{DB: db, Monitors: []Monitor{{
		Name: "m", Metric: "psi", Kind: Upper, Budget: 0.01,
		Fast: 1, Slow: 4, FastBurn: 1, SlowBurn: 0.9,
	}}}
	// One-window spike after a long quiet stretch: the slow window (mean
	// ~0.3x budget) vetoes the alert.
	feed(db, "psi", nil, 0, 0.001, 0.001, 0.001, 0.012)
	if got := ev.Eval(4 * win); len(got) != 0 {
		t.Fatalf("slow window failed to debounce: %+v", got)
	}
}

func TestLowerBurnRPSDip(t *testing.T) {
	db := tsdb.New(tsdb.Config{})
	ev := &Evaluator{DB: db, Monitors: []Monitor{{
		Name: "rps-burn", Metric: "rps_ratio", Kind: Lower, Budget: 0.75, Fast: 1, Slow: 2,
	}}}
	feed(db, "rps_ratio", nil, 0, 1.0, 0.98)
	if got := ev.Eval(2 * win); len(got) != 0 {
		t.Fatalf("healthy RPS alerted: %+v", got)
	}
	feed(db, "rps_ratio", nil, 2, 0.60) // dips through the budget
	got := ev.Eval(3 * win)
	if len(got) != 1 || got[0].Fast < 1.2 {
		t.Fatalf("dip alert = %+v", got)
	}

	// Total outage must burn, not divide by zero.
	feed(db, "rps_ratio", []telemetry.Label{{Key: "host", Value: "h1"}}, 3, 0, 0)
	if got := ev.Eval(5 * win); len(got) != 1 {
		t.Fatalf("outage alert = %+v", got)
	}
}

func TestSlopeProjection(t *testing.T) {
	db := tsdb.New(tsdb.Config{})
	ev := &Evaluator{DB: db, Monitors: []Monitor{{
		Name: "swap-slope", Metric: "swap_util", Kind: Slope, Budget: 0.95,
		Fast: 2, Slow: 4, Horizon: vclock.Duration(12 * win),
	}}}
	// Flat and low: projection stays put, no alert.
	feed(db, "swap_util", nil, 0, 0.30, 0.30, 0.30, 0.30)
	if got := ev.Eval(4 * win); len(got) != 0 {
		t.Fatalf("flat series alerted: %+v", got)
	}
	// Climbing ~5pp per window: projected 12 windows out crosses 0.95 long
	// before the level itself does.
	feed(db, "swap_util", nil, 4, 0.35, 0.40, 0.45, 0.50)
	got := ev.Eval(8 * win)
	if len(got) != 1 {
		t.Fatalf("slope projection missed exhaustion: %+v", got)
	}
	if got[0].Fast < 1 {
		t.Fatalf("burn = %v, want >= 1", got[0].Fast)
	}
}

// TestSlopeDegenerateWindows pins the trend-evidence guard: a Slope monitor
// must not project — and so must not alert — from a window with fewer than
// two samples or with no time spread, even when the level sits over budget.
func TestSlopeDegenerateWindows(t *testing.T) {
	m := Monitor{Name: "s", Metric: "swap_util", Kind: Slope, Budget: 0.5, Horizon: vclock.Duration(8 * win)}
	cases := []struct {
		name string
		pts  []tsdb.Point
		n    int
		want float64
	}{
		{name: "empty window", pts: nil, n: 4, want: 0},
		{
			name: "single sample over budget",
			pts:  []tsdb.Point{{T: win, V: 0.9}},
			n:    4,
			want: 0,
		},
		{
			name: "fast window trims to one sample",
			pts:  []tsdb.Point{{T: win, V: 0.1}, {T: 2 * win, V: 0.9}},
			n:    1,
			want: 0,
		},
		{
			name: "zero time spread over budget",
			pts:  []tsdb.Point{{T: win, V: 0.8}, {T: win, V: 0.9}},
			n:    4,
			want: 0,
		},
		{
			name: "two samples flat over budget still burn on level",
			pts:  []tsdb.Point{{T: win, V: 0.6}, {T: 2 * win, V: 0.6}},
			n:    4,
			want: 1.2,
		},
		{
			name: "two samples climbing project ahead",
			pts:  []tsdb.Point{{T: win, V: 0.1}, {T: 2 * win, V: 0.2}}, // +0.1/win, 8-win horizon
			n:    4,
			want: 2.0, // (0.2 + 0.8) / 0.5
		},
	}
	for _, tc := range cases {
		got := m.burn(tc.pts, tc.n)
		if got < tc.want-1e-9 || got > tc.want+1e-9 {
			t.Errorf("%s: burn = %v, want %v", tc.name, got, tc.want)
		}
	}

	// End to end: a series whose points all land on one instant must stay
	// quiet through Eval even with the level parked over budget.
	db := tsdb.New(tsdb.Config{})
	for i := 0; i < 3; i++ {
		db.Append(win, "swap_util", nil, 0.9)
	}
	ev := &Evaluator{DB: db, Monitors: []Monitor{{
		Name: "s", Metric: "swap_util", Kind: Slope, Budget: 0.5, Fast: 2, Slow: 4,
	}}}
	if got := ev.Eval(win); len(got) != 0 {
		t.Fatalf("degenerate slope series alerted: %+v", got)
	}
}

func TestDisabledAndShortSeries(t *testing.T) {
	db := tsdb.New(tsdb.Config{})
	ev := &Evaluator{DB: db, Monitors: []Monitor{
		{Name: "off", Metric: "psi", Kind: Upper, Budget: 0}, // zero budget disables
		{Name: "long", Metric: "psi", Kind: Upper, Budget: 0.01, Fast: 3},
	}}
	feed(db, "psi", nil, 0, 9.9) // one sample: shorter than Fast=3
	if got := ev.Eval(win); len(got) != 0 {
		t.Fatalf("disabled/short monitors alerted: %+v", got)
	}
}

func TestMatchRestrictsSeries(t *testing.T) {
	db := tsdb.New(tsdb.Config{})
	canary := []telemetry.Label{{Key: "stage", Value: "canary"}}
	fleetL := []telemetry.Label{{Key: "stage", Value: "fleet"}}
	feed(db, "psi", canary, 0, 0.5, 0.5)
	feed(db, "psi", fleetL, 0, 0.5, 0.5)
	ev := &Evaluator{DB: db, Monitors: []Monitor{{
		Name: "m", Metric: "psi", Match: canary, Kind: Upper, Budget: 0.01, Fast: 1,
	}}}
	got := ev.Eval(2 * win)
	if len(got) != 1 || got[0].Series != `psi{stage="canary"}` {
		t.Fatalf("match filter: %+v", got)
	}
}
